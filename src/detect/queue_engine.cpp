#include "detect/queue_engine.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"

namespace hpd::detect {

void QueueEngine::Ring::grow() {
  const std::size_t cap = buf_.empty() ? 8 : buf_.size() * 2;
  std::vector<Interval> next(cap);
  for (std::size_t i = 0; i < count_; ++i) {
    next[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
  }
  buf_ = std::move(next);
  head_ = 0;
}

void QueueEngine::reindex_from(std::size_t pos) {
  for (std::size_t s = pos; s < slots_.size(); ++s) {
    slot_of_[idx(slots_[s].key)] = static_cast<std::int32_t>(s);
  }
}

void QueueEngine::add_queue(ProcessId key) {
  HPD_REQUIRE(key >= 0, "QueueEngine: queue key must be non-negative");
  HPD_REQUIRE(!has_queue(key), "QueueEngine: queue already exists");
  if (idx(key) >= slot_of_.size()) {
    slot_of_.resize(idx(key) + 1, -1);
  }
  // Keep slots_ sorted by key so every scan below runs in ascending key
  // order (the iteration order the detection semantics are specified in).
  std::size_t pos = 0;
  while (pos < slots_.size() && slots_[pos].key < key) {
    ++pos;
  }
  Slot slot;
  slot.key = key;
  slots_.insert(slots_.begin() + static_cast<std::ptrdiff_t>(pos),
                std::move(slot));
  reindex_from(pos);
}

void QueueEngine::remove_queue(ProcessId key) {
  const std::int32_t s = slot_index(key);
  HPD_REQUIRE(s >= 0, "QueueEngine: removing unknown queue");
  const std::size_t pos = static_cast<std::size_t>(s);
  stored_ -= slots_[pos].q.size();
  slot_of_[idx(key)] = -1;
  slots_.erase(slots_.begin() + s);
  reindex_from(pos);
}

void QueueEngine::restore_pruned() {
  for (Slot& slot : slots_) {
    if (!slot.has_pruned) {
      continue;
    }
    slot.q.push_front(std::move(slot.last_pruned));
    slot.last_pruned = Interval();
    slot.has_pruned = false;
    ++stored_;
    stored_peak_ = std::max(stored_peak_, stored_);
  }
}

std::size_t QueueEngine::queue_size(ProcessId key) const {
  const std::int32_t s = slot_index(key);
  HPD_REQUIRE(s >= 0, "QueueEngine: unknown queue");
  return slots_[static_cast<std::size_t>(s)].q.size();
}

std::vector<ProcessId> QueueEngine::keys() const {
  std::vector<ProcessId> out;
  out.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    out.push_back(slot.key);
  }
  return out;
}

void QueueEngine::clear_queue(ProcessId key) {
  const std::int32_t s = slot_index(key);
  HPD_REQUIRE(s >= 0, "QueueEngine: unknown queue");
  Slot& slot = slots_[static_cast<std::size_t>(s)];
  stored_ -= slot.q.size();
  slot.q.clear();
  slot.last_pruned = Interval();
  slot.has_pruned = false;
}

QueueEngine::Snapshot QueueEngine::snapshot() const {
  Snapshot snap;
  snap.queues.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    Snapshot::Queue q;
    q.key = slot.key;
    q.items.reserve(slot.q.size());
    for (std::size_t i = 0; i < slot.q.size(); ++i) {
      q.items.push_back(slot.q.at(i));
    }
    q.last_pruned = slot.last_pruned;
    q.has_pruned = slot.has_pruned;
    snap.queues.push_back(std::move(q));
  }
  snap.prune_mode = static_cast<std::uint8_t>(mode_);
  snap.capacity = capacity_;
  snap.rejected = rejected_;
  snap.comparisons = comparisons_;
  snap.stored_peak = stored_peak_;
  snap.eliminated = eliminated_;
  snap.pruned = pruned_;
  snap.solutions_found = solutions_found_;
  snap.offered = offered_;
  return snap;
}

void QueueEngine::restore(const Snapshot& snap) {
  HPD_REQUIRE(snap.prune_mode == static_cast<std::uint8_t>(mode_),
              "QueueEngine::restore: prune-mode mismatch");
  slots_.clear();
  slot_of_.clear();
  stored_ = 0;
  for (const Snapshot::Queue& q : snap.queues) {
    add_queue(q.key);
    Slot& slot = slots_[static_cast<std::size_t>(slot_index(q.key))];
    for (const Interval& x : q.items) {
      // Raw re-enqueue: the snapshot was taken at a detect-loop fixpoint,
      // so replaying the contents must not re-run detection (offered_ et
      // al. already account for these intervals).
      slot.q.push_back(Interval(x));
      ++stored_;
    }
    slot.last_pruned = q.last_pruned;
    slot.has_pruned = q.has_pruned;
  }
  capacity_ = snap.capacity;
  rejected_ = snap.rejected;
  comparisons_ = snap.comparisons;
  stored_peak_ = std::max<std::size_t>(snap.stored_peak, stored_);
  eliminated_ = snap.eliminated;
  pruned_ = snap.pruned;
  solutions_found_ = snap.solutions_found;
  offered_ = snap.offered;
}

bool QueueEngine::vc_less_counted(const VectorClock& a, const VectorClock& b) {
  ++comparisons_;
  return vc_less(a, b);
}

bool QueueEngine::vc_leq_counted(const VectorClock& a, const VectorClock& b) {
  ++comparisons_;
  return vc_leq(a, b);
}

bool QueueEngine::all_queues_nonempty() const {
  return std::all_of(slots_.begin(), slots_.end(),
                     [](const Slot& slot) { return !slot.q.empty(); });
}

bool QueueEngine::heads_compatible() const {
  for (const Slot& sa : slots_) {
    if (sa.q.empty()) {
      continue;
    }
    for (const Slot& sb : slots_) {
      if (&sb == &sa || sb.q.empty()) {
        continue;
      }
      if (!vc_leq(sa.q.front().lo, sb.q.front().hi)) {
        return false;
      }
    }
  }
  return true;
}

std::vector<Solution> QueueEngine::offer(ProcessId key, Interval&& x) {
  const std::int32_t s = slot_index(key);
  HPD_REQUIRE(s >= 0, "QueueEngine::offer: unknown queue");
  Slot& slot = slots_[static_cast<std::size_t>(s)];
  if (capacity_ != 0 && slot.q.size() >= capacity_) {
    ++rejected_;  // back-pressure: bounded node memory (see set_capacity)
    return {};
  }
  const bool was_empty = slot.q.empty();
  slot.q.push_back(std::move(x));
  ++offered_;
  ++stored_;
  stored_peak_ = std::max(stored_peak_, stored_);
  if (!was_empty) {
    // Algorithm 1, line 2: only a new head can enable progress.
    return {};
  }
  updated_.reset(slots_.size());
  updated_.set(static_cast<std::size_t>(s));
  return detect_loop();
}

std::vector<Solution> QueueEngine::recheck() {
  updated_.reset(slots_.size());
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    if (!slots_[s].q.empty()) {
      updated_.set(s);
    }
  }
  if (!updated_.any()) {
    return {};
  }
  return detect_loop();
}

std::vector<Solution> QueueEngine::detect_loop() {
  std::vector<Solution> solutions;
  const std::size_t nslots = slots_.size();
  while (updated_.any()) {
    // ---- One elimination round (lines 5–17) ----
    next_.reset(nslots);
    updated_.for_each([&](std::size_t a) {
      Slot& sa = slots_[a];
      if (sa.q.empty()) {
        return;
      }
      const Interval& x = sa.q.front();
      for (std::size_t b = 0; b < nslots; ++b) {
        if (b == a) {
          continue;
        }
        Slot& sb = slots_[b];
        if (sb.q.empty()) {
          continue;
        }
        const Interval& y = sb.q.front();
        // Non-strict comparison: raw event timestamps from different
        // processes are never equal (so this matches the paper's strict
        // test exactly), while aggregated cuts may legitimately coincide
        // (see overlap_cuts in interval/interval.hpp).
        if (!vc_leq_counted(x.lo, y.hi)) {
          // y can never pair with x or any successor of x: delete y.
          next_.set(b);
        }
        if (!vc_leq_counted(y.lo, x.hi)) {
          next_.set(a);
        }
      }
    });
    if (next_.any()) {
      next_.for_each([&](std::size_t c) {
        if (!slots_[c].q.empty()) {
          slots_[c].q.drop_front();
          --stored_;
          ++eliminated_;
        }
      });
      std::swap(updated_, next_);
      continue;
    }

    // ---- Fixpoint reached: solution check (lines 18–22) ----
    if (!all_queues_nonempty()) {
      break;
    }

    // ---- Pruning decision (lines 23–33, Eq. (10)) ----
    // Decided before the solution snapshot so pruned heads can be *moved*
    // into the Solution instead of copied; the comparisons below observe
    // the same heads either way.
    prune_.reset(nslots);
    std::size_t prune_count = 0;
    for (std::size_t a = 0; a < nslots; ++a) {
      bool removable = true;
      if (mode_ != PruneMode::kTestBrokenPruneAll) {
        for (std::size_t b = 0; b < nslots; ++b) {
          if (b == a) {
            continue;
          }
          if (vc_less_counted(slots_[b].q.front().hi, slots_[a].q.front().hi)) {
            removable = false;  // Eq. (10) fails: some max(x_b) < max(x_a)
            break;
          }
        }
      }
      if (removable) {
        prune_.set(a);
        ++prune_count;
        if (mode_ == PruneMode::kSingleEq10) {
          break;
        }
      }
    }
    // Theorem 4 (liveness): at least one head always satisfies Eq. (10).
    HPD_ASSERT(prune_count > 0,
               "QueueEngine: Eq.(10) pruned nothing (violates Theorem 4)");

    Solution sol;
    sol.members.reserve(nslots);
    for (std::size_t s = 0; s < nslots; ++s) {
      Slot& slot = slots_[s];
      if (prune_.test(s)) {
        // The head leaves the queue: remember a copy for restore_pruned()
        // and move the original straight into the solution.
        Interval head = slot.q.take_front();
        --stored_;
        slot.last_pruned = head;
        slot.has_pruned = true;
        sol.members.push_back(std::move(head));
        ++pruned_;
      } else {
        sol.members.push_back(slot.q.front());
      }
    }
    solutions.push_back(std::move(sol));
    ++solutions_found_;
    std::swap(updated_, prune_);
  }
  return solutions;
}

}  // namespace hpd::detect
