#include "detect/reorder.hpp"

namespace hpd::detect {

void ReorderBuffer::track(ProcessId origin, SeqNum first_seq) {
  Stream s;
  s.expected = first_seq;
  streams_[origin] = std::move(s);
}

void ReorderBuffer::untrack(ProcessId origin) { streams_.erase(origin); }

std::vector<Interval> ReorderBuffer::push(ProcessId origin, Interval x) {
  std::vector<Interval> out;
  auto it = streams_.find(origin);
  if (it == streams_.end()) {
    ++dropped_stale_;
    return out;
  }
  Stream& s = it->second;
  if (x.seq < s.expected) {
    ++dropped_stale_;
    return out;
  }
  if (x.seq == s.expected) {
    out.push_back(std::move(x));
    ++s.expected;
    // Drain any parked run that is now contiguous.
    auto p = s.parked.begin();
    while (p != s.parked.end() && p->first == s.expected) {
      out.push_back(std::move(p->second));
      p = s.parked.erase(p);
      ++s.expected;
    }
  } else {
    s.parked.emplace(x.seq, std::move(x));
  }
  return out;
}

ReorderBuffer::Snapshot ReorderBuffer::snapshot() const {
  Snapshot snap;
  snap.streams.reserve(streams_.size());
  for (const auto& [origin, s] : streams_) {
    Snapshot::Stream out;
    out.origin = origin;
    out.expected = s.expected;
    out.parked.reserve(s.parked.size());
    for (const auto& [seq, x] : s.parked) {
      out.parked.emplace_back(seq, x);
    }
    snap.streams.push_back(std::move(out));
  }
  snap.dropped_stale = dropped_stale_;
  return snap;
}

void ReorderBuffer::restore(const Snapshot& snap) {
  streams_.clear();
  for (const Snapshot::Stream& in : snap.streams) {
    Stream s;
    s.expected = in.expected;
    for (const auto& [seq, x] : in.parked) {
      s.parked.emplace(seq, x);
    }
    streams_[in.origin] = std::move(s);
  }
  dropped_stale_ = snap.dropped_stale;
}

std::size_t ReorderBuffer::pending() const {
  std::size_t total = 0;
  for (const auto& [origin, s] : streams_) {
    total += s.parked.size();
  }
  return total;
}

}  // namespace hpd::detect
