#include "detect/possibly.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace hpd::detect {

void PossiblyEngine::add_queue(ProcessId key) {
  HPD_REQUIRE(queues_.count(key) == 0, "PossiblyEngine: duplicate queue");
  queues_.emplace(key, std::deque<Interval>{});
}

bool PossiblyEngine::coexist(const Interval& x, const Interval& y) {
  ++comparisons_;
  const std::size_t px = idx(x.origin);
  const std::size_t py = idx(y.origin);
  return y.lo[px] <= x.hi[px] && x.lo[py] <= y.hi[py];
}

std::vector<Solution> PossiblyEngine::offer(ProcessId key, Interval x) {
  auto it = queues_.find(key);
  HPD_REQUIRE(it != queues_.end(), "PossiblyEngine::offer: unknown queue");
  HPD_DASSERT(x.origin == key, "PossiblyEngine: origin/queue mismatch");
  if (done_) {
    return {};  // one-shot detector has fired: it "hangs" (by design)
  }
  const bool was_empty = it->second.empty();
  it->second.push_back(std::move(x));
  ++offered_;
  ++stored_;
  stored_peak_ = std::max(stored_peak_, stored_);
  if (!was_empty) {
    return {};
  }
  return detect_loop({key});
}

std::vector<Solution> PossiblyEngine::detect_loop(
    std::vector<ProcessId> updated) {
  std::vector<Solution> solutions;
  while (!updated.empty()) {
    // Elimination round: a head that ended before another head began can
    // never coexist with that queue's present or future intervals.
    std::vector<ProcessId> doomed;
    for (const ProcessId a : updated) {
      const auto qa = queues_.find(a);
      if (qa == queues_.end() || qa->second.empty()) {
        continue;
      }
      const Interval& x = qa->second.front();
      for (const auto& [b, qb] : queues_) {
        if (b == a || qb.empty()) {
          continue;
        }
        const Interval& y = qb.front();
        if (coexist(x, y)) {
          continue;
        }
        // Exactly one of x, y is causally earlier; it is the dead one.
        const bool x_before_y = y.lo[idx(x.origin)] > x.hi[idx(x.origin)];
        doomed.push_back(x_before_y ? a : b);
      }
    }
    if (!doomed.empty()) {
      std::sort(doomed.begin(), doomed.end());
      doomed.erase(std::unique(doomed.begin(), doomed.end()), doomed.end());
      std::vector<ProcessId> next;
      for (const ProcessId c : doomed) {
        auto& q = queues_.at(c);
        if (!q.empty()) {
          q.pop_front();
          --stored_;
          ++eliminated_;
          next.push_back(c);
        }
      }
      updated = std::move(next);
      continue;
    }

    // Fixpoint: solution if every queue is non-empty.
    const bool complete = std::all_of(
        queues_.begin(), queues_.end(),
        [](const auto& kv) { return !kv.second.empty(); });
    if (!complete) {
      break;
    }
    Solution sol;
    sol.members.reserve(queues_.size());
    for (const auto& [k, q] : queues_) {
      sol.members.push_back(q.front());
    }
    solutions.push_back(std::move(sol));
    ++solutions_found_;
    if (mode_ == Mode::kOneShot) {
      done_ = true;
      break;
    }
    // Consume every witness; the exposed heads seed the next round.
    std::vector<ProcessId> next;
    for (auto& [k, q] : queues_) {
      q.pop_front();
      --stored_;
      next.push_back(k);
    }
    updated = std::move(next);
  }
  return solutions;
}

PossiblySink::PossiblySink(ProcessId self,
                           const std::vector<ProcessId>& processes,
                           Hooks hooks, PossiblyEngine::Mode mode)
    : self_(self), hooks_(std::move(hooks)), engine_(mode) {
  bool saw_self = false;
  for (const ProcessId p : processes) {
    engine_.add_queue(p);
    if (p == self_) {
      saw_self = true;
    } else {
      reorder_.track(p, 1);
    }
  }
  HPD_REQUIRE(saw_self, "PossiblySink: sink must be among the processes");
}

void PossiblySink::local_interval(Interval x) {
  handle_solutions(engine_.offer(self_, std::move(x)));
}

void PossiblySink::report(Interval x) {
  const ProcessId origin = x.origin;
  if (!engine_.has_queue(origin)) {
    return;
  }
  for (Interval& y : reorder_.push(origin, std::move(x))) {
    handle_solutions(engine_.offer(origin, std::move(y)));
  }
}

void PossiblySink::handle_solutions(const std::vector<Solution>& sols) {
  for (const Solution& sol : sols) {
    OccurrenceRecord rec;
    rec.detector = self_;
    rec.index = ++occurrence_count_;
    rec.time = now();
    rec.global = true;
    rec.aggregate = aggregate(std::span<const Interval>(sol.members), self_,
                              occurrence_count_);
    rec.latest_member_completion = rec.aggregate.completed_at;
    rec.solution = sol.members;
    if (hooks_.on_occurrence) {
      hooks_.on_occurrence(rec);
    }
  }
}

std::vector<Solution> possibly_replay(const trace::ExecutionRecord& exec,
                                      PossiblyEngine::Mode mode) {
  PossiblyEngine engine(mode);
  const std::size_t n = exec.num_processes();
  for (std::size_t i = 0; i < n; ++i) {
    engine.add_queue(static_cast<ProcessId>(i));
  }
  std::vector<Solution> out;
  bool more = true;
  for (std::size_t k = 0; more; ++k) {
    more = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (k < exec.procs[i].intervals.size()) {
        more = true;
        auto sols = engine.offer(static_cast<ProcessId>(i),
                                 exec.procs[i].intervals[k]);
        for (auto& s : sols) {
          out.push_back(std::move(s));
        }
      }
    }
  }
  return out;
}

}  // namespace hpd::detect
