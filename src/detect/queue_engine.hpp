// The queue-based Definitely(Φ) detection engine — the computational core of
// the paper's Algorithm 1 and of the centralized baseline [12].
//
// The engine maintains one FIFO queue of intervals per source (the node's
// own intervals plus one queue per child for the hierarchical algorithm;
// one queue per process for the centralized sink). Offering an interval
// triggers the elimination / detection / pruning cycle:
//
//   1. Elimination fixpoint (Algorithm 1, lines 4–17): repeatedly compare
//      updated queue heads pairwise; a head y with min(x) ≮ max(y) can never
//      pair with x or any successor of x (timestamps only grow), so y is
//      deleted. Deleted heads expose new heads, which join the next round.
//   2. Solution (lines 18–22): at a fixpoint, if every queue is non-empty
//      the heads are pairwise compatible and form a solution set.
//   3. Pruning for repeated detection (lines 23–33, Eq. (10)): every head
//      whose max is not dominated (no other head with strictly smaller max)
//      is removed — Theorem 3 shows this is safe, Theorem 4 that at least
//      one head is removed. The pruned queues seed the next fixpoint round,
//      so several solutions can emerge from a single offer.
//
// Structural note: the paper's listing places the solution check inside the
// elimination loop; a solution is only sound at a fixpoint (heads exposed by
// a deletion have not been compared yet), so we restructure as fixpoint →
// check → prune → repeat. Pruning uses the exact partial-order test
// max(x_j) ≮ max(x_i); the listing's component-wise loop (line 27) misses
// the equal-vectors corner case.
//
// Storage (ISSUE 5): the queues live in a dense, key-sorted slot vector —
// one ring buffer of intervals per slot — with a ProcessId → slot side
// index, and the detect-loop worklists are slot bitmaps. Steady-state
// offer() (warm rings, n ≤ VectorClock::kInlineCapacity) performs zero
// heap allocations on the no-solution path; intervals are moved, never
// copied, from offer through the queue into the detected Solution. The
// frozen pre-flattening implementation is kept under tests/reference/ and
// differential tests pin this engine to it.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "interval/interval.hpp"

namespace hpd::detect {

/// A solution set found by the engine: a snapshot of all queue heads at the
/// moment of detection, in ascending queue-key order. Members whose head was
/// pruned by Eq. (10) are moved out of the queue, not copied.
struct Solution {
  std::vector<Interval> members;
};

class QueueEngine {
 public:
  enum class PruneMode {
    kAllEq10,     ///< remove every head satisfying Eq. (10) — the paper
    kSingleEq10,  ///< remove only the first such head (ablation A4)
    /// Deliberately broken rule for fault-injection testing ONLY: after a
    /// solution, prune *every* head, including those Eq. (10) would keep
    /// because another head's smaller max proves they can still combine
    /// with a successor. Over-pruning silently loses later solutions; the
    /// model checker's differential oracles must detect and shrink it.
    /// Never use outside tests.
    kTestBrokenPruneAll,
  };

  explicit QueueEngine(PruneMode mode = PruneMode::kAllEq10) : mode_(mode) {}

  /// Resource-constrained mode: bound each queue to `max_per_queue`
  /// intervals (0 = unbounded, the default). A full queue rejects new
  /// offers (back-pressure: the in-queue order and the succ() invariant are
  /// preserved; the cost is missed occurrences, quantified by
  /// bench_capacity). Rejected offers are counted.
  void set_capacity(std::size_t max_per_queue) { capacity_ = max_per_queue; }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t rejected() const { return rejected_; }

  // ---- Queue management --------------------------------------------------

  void add_queue(ProcessId key);

  /// Remove a queue and everything in it (child failed). Call recheck()
  /// afterwards: dropping the blocking queue may complete a solution.
  void remove_queue(ProcessId key);

  bool has_queue(ProcessId key) const {
    return key >= 0 && idx(key) < slot_of_.size() && slot_of_[idx(key)] >= 0;
  }
  std::size_t num_queues() const { return slots_.size(); }
  std::size_t queue_size(ProcessId key) const;

  /// All queue keys, ascending.
  std::vector<ProcessId> keys() const;

  /// Drop a queue's contents (and its remembered pruned head) without
  /// removing the queue itself — crash-recovery state reset.
  void clear_queue(ProcessId key);

  // ---- Detection ---------------------------------------------------------

  /// Offer an interval to queue `key` (which must exist). Intervals from
  /// one key must arrive in succ() order (see ReorderBuffer). Returns the
  /// solutions detected, in detection order. The interval is moved into
  /// the queue; use the const& overload only where a copy is genuinely
  /// needed (replay from recorded executions).
  std::vector<Solution> offer(ProcessId key, Interval&& x);

  /// Copying overload for callers replaying intervals they must keep
  /// (offline replay over a recorded execution). The copy here is explicit
  /// — hot-path callers pass rvalues and hit the move overload.
  std::vector<Solution> offer(ProcessId key, const Interval& x) {
    return offer(key, Interval(x));
  }

  /// Re-run detection after structural changes (queue removal).
  std::vector<Solution> recheck();

  /// Restore each queue's most recently *pruned* head (Section III-F
  /// support). Pruning-safety (Theorem 3) is proven for a fixed queue set;
  /// when the detection scope grows — the node gains a child after a tree
  /// repair — the last pruned interval may legitimately belong to a
  /// solution of the enlarged subtree (the paper's Fig. 2(c) expects
  /// exactly this: P4's own x5 must still combine with P2's {x1, x3}
  /// aggregate after P4 becomes the new root). Restored intervals go back
  /// to the queue front; each is restored at most once.
  void restore_pruned();

  // ---- Statistics (the paper's complexity units) --------------------------

  /// Vector-timestamp comparisons performed (time-complexity unit).
  std::uint64_t comparisons() const { return comparisons_; }
  /// Intervals currently stored.
  std::size_t stored() const { return stored_; }
  /// Peak simultaneous storage (space-complexity unit).
  std::size_t stored_peak() const { return stored_peak_; }
  /// Heads deleted by the elimination fixpoint.
  std::uint64_t eliminated() const { return eliminated_; }
  /// Heads deleted by Eq. (10) pruning.
  std::uint64_t pruned() const { return pruned_; }
  /// Solutions found over the engine's lifetime.
  std::uint64_t solutions_found() const { return solutions_found_; }
  /// Intervals ever offered (enqueued) to this engine.
  std::uint64_t offered() const { return offered_; }

  /// Self-check of the engine's core invariant: outside of a detect cycle,
  /// the current queue heads are pairwise compatible (every incompatibility
  /// is resolved the moment it becomes observable). Returns true if the
  /// invariant holds; O(q²·n). Test/debug instrumentation.
  bool heads_compatible() const;

  // ---- Checkpoint surface (durability) ------------------------------------

  /// Deep image of the engine's full state: every queue's contents in FIFO
  /// order, the remembered pruned heads, and all counters. Serialized by
  /// ckpt/snapshot; restore() rebuilds an engine that continues the
  /// solution stream exactly where the snapshot left off. `prune_mode` and
  /// `capacity` are recorded so a restore into a differently-configured
  /// engine is rejected instead of silently diverging.
  struct Snapshot {
    struct Queue {
      ProcessId key = kNoProcess;
      std::vector<Interval> items;  ///< front first
      Interval last_pruned;
      bool has_pruned = false;
    };
    std::vector<Queue> queues;  ///< ascending key order
    std::uint8_t prune_mode = 0;
    std::uint64_t capacity = 0;
    std::uint64_t rejected = 0;
    std::uint64_t comparisons = 0;
    std::uint64_t stored_peak = 0;
    std::uint64_t eliminated = 0;
    std::uint64_t pruned = 0;
    std::uint64_t solutions_found = 0;
    std::uint64_t offered = 0;
  };

  Snapshot snapshot() const;

  /// Replace this engine's entire state with `snap`. The engine must have
  /// been constructed with the same PruneMode the snapshot was taken under
  /// (the mode changes which solutions the detect loop emits, so a silent
  /// mismatch would corrupt the occurrence stream).
  void restore(const Snapshot& snap);

 private:
  /// FIFO of intervals over a power-of-two ring. Capacity is retained
  /// across pops, so a warm ring never allocates in steady state.
  class Ring {
   public:
    bool empty() const { return count_ == 0; }
    std::size_t size() const { return count_; }
    const Interval& front() const { return buf_[head_]; }
    /// i-th stored interval, 0 = front (checkpoint capture).
    const Interval& at(std::size_t i) const {
      return buf_[(head_ + i) & (buf_.size() - 1)];
    }

    void push_back(Interval&& x) {
      if (count_ == buf_.size()) {
        grow();
      }
      buf_[(head_ + count_) & (buf_.size() - 1)] = std::move(x);
      ++count_;
    }

    void push_front(Interval&& x) {
      if (count_ == buf_.size()) {
        grow();
      }
      head_ = (head_ + buf_.size() - 1) & (buf_.size() - 1);
      buf_[head_] = std::move(x);
      ++count_;
    }

    /// Move the head out (solution / pruning path).
    Interval take_front() {
      Interval out = std::move(buf_[head_]);
      advance_head();
      return out;
    }

    /// Destroy the head in place (elimination path) — frees any heap the
    /// stored interval owned without constructing a return value.
    void drop_front() {
      buf_[head_] = Interval();
      advance_head();
    }

    void clear() {
      while (count_ > 0) {
        drop_front();
      }
      head_ = 0;
    }

   private:
    void advance_head() {
      head_ = (head_ + 1) & (buf_.size() - 1);
      --count_;
    }
    void grow();

    std::vector<Interval> buf_;  // size is always 0 or a power of two
    std::size_t head_ = 0;
    std::size_t count_ = 0;
  };

  /// Worklist over slot indices (replaces the former std::set<ProcessId>):
  /// one bit per slot, iterated in ascending order — the same order the
  /// key-sorted std::map gave the original implementation.
  class SlotBitmap {
   public:
    void reset(std::size_t bits) {
      words_.assign((bits + 63) / 64, 0);  // retains capacity when warm
      any_ = false;
    }
    void set(std::size_t i) {
      words_[i >> 6] |= std::uint64_t{1} << (i & 63);
      any_ = true;
    }
    bool test(std::size_t i) const {
      return (words_[i >> 6] >> (i & 63)) & 1;
    }
    bool any() const { return any_; }

    template <typename Fn>
    void for_each(Fn&& fn) const {
      for (std::size_t w = 0; w < words_.size(); ++w) {
        std::uint64_t word = words_[w];
        while (word != 0) {
          fn((w << 6) + static_cast<std::size_t>(std::countr_zero(word)));
          word &= word - 1;
        }
      }
    }

   private:
    std::vector<std::uint64_t> words_;
    bool any_ = false;
  };

  struct Slot {
    ProcessId key = kNoProcess;
    Ring q;
    Interval last_pruned;
    bool has_pruned = false;
  };

  bool vc_less_counted(const VectorClock& a, const VectorClock& b);
  bool vc_leq_counted(const VectorClock& a, const VectorClock& b);
  bool all_queues_nonempty() const;
  std::int32_t slot_index(ProcessId key) const {
    return has_queue(key) ? slot_of_[idx(key)] : -1;
  }
  void reindex_from(std::size_t pos);

  /// The detection cycle, seeded by the `updated_` bitmap (slots whose
  /// heads changed).
  std::vector<Solution> detect_loop();

  /// Queues in ascending key order. Dense: the pairwise head scans walk a
  /// contiguous vector instead of chasing std::map nodes.
  std::vector<Slot> slots_;
  /// key → index into slots_, -1 when absent. Structural changes
  /// (add/remove queue) are rare; lookups are O(1).
  std::vector<std::int32_t> slot_of_;
  /// detect_loop scratch, kept warm across calls (zero steady-state
  /// allocation).
  SlotBitmap updated_;
  SlotBitmap next_;
  SlotBitmap prune_;
  PruneMode mode_;
  std::size_t capacity_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t comparisons_ = 0;
  std::size_t stored_ = 0;
  std::size_t stored_peak_ = 0;
  std::uint64_t eliminated_ = 0;
  std::uint64_t pruned_ = 0;
  std::uint64_t solutions_found_ = 0;
  std::uint64_t offered_ = 0;
};

}  // namespace hpd::detect
