// Records describing a detected satisfaction of Definitely(Φ).
#pragma once

#include <functional>
#include <vector>

#include "common/types.hpp"
#include "interval/interval.hpp"

namespace hpd::detect {

/// One satisfaction of Definitely(Φ) over some scope (a subtree, or the
/// whole system when `detector` is the spanning-tree root / the sink).
struct OccurrenceRecord {
  ProcessId detector = kNoProcess;  ///< node where the solution was found
  SeqNum index = 0;                 ///< k-th detection at this node (1-based)
  SimTime time = 0.0;               ///< simulation time of detection
  /// Completion time of the latest member interval; `time` minus this is
  /// the detection latency of the occurrence.
  SimTime latest_member_completion = 0.0;
  bool global = false;              ///< true at the root / sink

  SimTime latency() const { return time - latest_member_completion; }
  Interval aggregate;               ///< ⊓(solution), as reported upward
  std::vector<Interval> solution;   ///< the queue heads forming the solution
};

using OccurrenceCallback = std::function<void(const OccurrenceRecord&)>;

}  // namespace hpd::detect
