#include "detect/par_aggregate.hpp"

#include <algorithm>
#include <memory>

#include "common/assert.hpp"
#include "vc/simd.hpp"

namespace hpd::detect {

namespace {

// Slice granularity in components: 16 u32 = one 64-byte cache line, so no
// two workers ever store into the same line of lo/hi (no false sharing).
constexpr std::size_t kSliceAlign = 16;

// Mirrors the provenance gate in interval.cpp's aggregate(): attach iff
// every input carries a record.
bool all_have_provenance(std::span<const Interval> xs) {
  for (const Interval& x : xs) {
    if (x.provenance == nullptr) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool aggregate_should_parallelize(std::size_t batch, std::size_t n,
                                  const parallel::ThreadPool* pool) {
  return pool != nullptr && pool->size() > 1 &&
         batch * n >= kParallelAggregateMinWork;
}

Interval aggregate_parallel(std::span<const Interval> xs, ProcessId origin,
                            SeqNum seq, parallel::ThreadPool& pool) {
  HPD_REQUIRE(!xs.empty(), "aggregate_parallel: empty interval set");
  const bool all_provenance = all_have_provenance(xs);
  Interval out;
  out.lo = xs.front().lo;
  out.hi = xs.front().hi;
  out.weight = 0;
  for (const Interval& x : xs) {
    out.weight += x.weight;
    out.completed_at = std::max(out.completed_at, x.completed_at);
  }
  ClockValue* pl = out.lo.data();
  ClockValue* ph = out.hi.data();
  const std::size_t n = out.lo.size();
  HPD_REQUIRE(out.hi.size() == n, "aggregate_parallel: lo/hi size mismatch");
  // Validate every input up front (serially) so workers can run assert-free
  // over raw pointers.
  for (std::size_t k = 1; k < xs.size(); ++k) {
    HPD_REQUIRE(xs[k].lo.size() == n && xs[k].hi.size() == n,
                "aggregate_parallel: clock size mismatch");
  }
  const std::size_t max_slices = (n + kSliceAlign - 1) / kSliceAlign;
  const std::size_t slices = std::min(pool.size(), max_slices);
  if (slices <= 1 || xs.size() < 2) {
    // Single worker (or nothing to combine): the pool handoff cannot pay
    // for itself; run the same kernels inline.
    const auto& ker = vc_simd::kernels();
    for (std::size_t k = 1; k < xs.size(); ++k) {
      ker.meet_join(pl, ph, xs[k].lo.data(), xs[k].hi.data(), n);
    }
  } else {
    const std::size_t per =
        ((n + slices - 1) / slices + kSliceAlign - 1) / kSliceAlign *
        kSliceAlign;
    parallel::parallel_for(pool, slices, [&](std::size_t s) {
      const std::size_t begin = s * per;
      if (begin >= n) {
        return;  // rounding can leave trailing slices empty
      }
      const std::size_t len = std::min(per, n - begin);
      const auto& ker = vc_simd::kernels();
      // Same register-accumulating fan-in kernel as the serial
      // aggregate(), restricted to this slice's component range.
      constexpr std::size_t kGroup = 32;
      const ClockValue* qls[kGroup];
      const ClockValue* qhs[kGroup];
      std::size_t k = 1;
      while (k < xs.size()) {
        const std::size_t count = std::min(kGroup, xs.size() - k);
        for (std::size_t g = 0; g < count; ++g) {
          qls[g] = xs[k + g].lo.data() + begin;
          qhs[g] = xs[k + g].hi.data() + begin;
        }
        ker.meet_join_many(pl + begin, ph + begin, qls, qhs, count, len);
        k += count;
      }
    });
  }
  out.origin = origin;
  out.seq = seq;
  out.aggregated = true;
  if (all_provenance) {
    auto prov = std::make_shared<Provenance>();
    prov->origin = origin;
    prov->seq = seq;
    prov->parts.reserve(xs.size());
    for (const Interval& x : xs) {
      prov->parts.push_back(x.provenance);
    }
    out.provenance = std::move(prov);
  }
  return out;
}

}  // namespace hpd::detect
