// Ground truth from first principles: traverse the lattice of consistent
// global states (Cooper–Marzullo style) of a recorded execution to decide
// Possibly(Φ) and Definitely(Φ).
//
//   Possibly(Φ):   some reachable consistent cut satisfies Φ.
//   Definitely(Φ): no observation (maximal path initial → final through
//                  consistent cuts) avoids Φ entirely — equivalently, the
//                  final cut is NOT reachable through ¬Φ cuts only.
//
// Exponential in the execution size; intended for small property-test
// executions to validate the interval-based detectors.
#pragma once

#include <cstddef>

#include "trace/execution.hpp"

namespace hpd::detect::offline {

struct LatticeOptions {
  /// Abort (throw AssertionError) if more states than this are explored.
  std::size_t max_states = 2'000'000;
};

bool lattice_possibly(const trace::ExecutionRecord& exec,
                      const LatticeOptions& options = {});

bool lattice_definitely(const trace::ExecutionRecord& exec,
                        const LatticeOptions& options = {});

/// Number of consistent cuts of the execution (diagnostics; subject to the
/// same state budget).
std::size_t count_consistent_cuts(const trace::ExecutionRecord& exec,
                                  const LatticeOptions& options = {});

}  // namespace hpd::detect::offline
