// Reference replay of the centralized repeated-detection algorithm [12]
// over a recorded execution. Used as the specification the online
// detectors (hierarchical and centralized) are compared against, and — with
// `repeated = false` — as the classic one-shot Garg–Waldecker detector,
// which finds the first satisfaction and then hangs (the paper's argument
// for why hierarchical detection *needs* repeated detection, Fig. 2).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "detect/queue_engine.hpp"
#include "trace/execution.hpp"

namespace hpd::detect::offline {

struct ReplayOptions {
  QueueEngine::PruneMode prune_mode = QueueEngine::PruneMode::kAllEq10;
  /// false: stop after the first solution and never prune (one-shot GW).
  bool repeated = true;
  /// If set, randomly interleave the per-process interval streams with this
  /// seed (per-process order is always preserved). Default: round-robin by
  /// interval index — deterministic and close to "completion order" for
  /// well-formed workloads. Used by confluence tests.
  std::optional<std::uint64_t> shuffle_seed;
};

/// Feed every process's recorded intervals into a fresh sink and return the
/// solutions in detection order.
std::vector<Solution> replay_centralized(const trace::ExecutionRecord& exec,
                                         const ReplayOptions& options = {});

/// The arrival sequence a replay feeds its engine: (process, interval-index)
/// pairs preserving per-process order. Round-robin by interval index when
/// `shuffle_seed` is empty, seeded random interleave otherwise. Shared by
/// the centralized and slicing replays so they see identical schedules.
std::vector<std::pair<std::size_t, std::size_t>> arrival_order(
    const trace::ExecutionRecord& exec,
    std::optional<std::uint64_t> shuffle_seed);

}  // namespace hpd::detect::offline
