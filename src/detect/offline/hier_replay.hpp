// Offline reference of the *hierarchical* algorithm: replay a recorded
// execution through a tree of queue engines, exactly as Algorithm 1 would
// run it on a failure-free deployment. Produces every node's occurrence
// sequence, making the online hierarchical detector differentially
// testable at every level (the centralized replay only covers the root).
//
// Determinism: intervals are injected bottom-up in per-origin order
// (round-robin over interval index); by the confluence property validated
// in the replay tests, the per-node solution sequences are independent of
// the interleaving, so this matches any online schedule.
#pragma once

#include <map>
#include <vector>

#include "detect/occurrence.hpp"
#include "detect/queue_engine.hpp"
#include "net/spanning_tree.hpp"
#include "trace/execution.hpp"

namespace hpd::detect::offline {

struct HierReplayResult {
  /// node → its solutions, in detection order. Members carry provenance if
  /// the recorded intervals did.
  std::map<ProcessId, std::vector<Solution>> solutions;

  std::size_t total() const {
    std::size_t out = 0;
    for (const auto& [node, sols] : solutions) {
      out += sols.size();
    }
    return out;
  }
};

/// Replay `exec` through the hierarchy `tree`. The execution must have one
/// process per tree node.
HierReplayResult hier_replay(const trace::ExecutionRecord& exec,
                             const net::SpanningTree& tree,
                             QueueEngine::PruneMode mode =
                                 QueueEngine::PruneMode::kAllEq10);

}  // namespace hpd::detect::offline
