#include "detect/offline/par_replay.hpp"

#include <future>
#include <utility>

namespace hpd::detect::offline {

TripleResult replay_triple(const trace::ExecutionRecord& exec,
                           const net::SpanningTree& tree,
                           const TripleOptions& options,
                           parallel::ThreadPool& pool) {
  ReplayOptions copt;
  copt.prune_mode = options.prune_mode;
  copt.shuffle_seed = options.shuffle_seed;
  SlicingReplayOptions sopt;
  sopt.prune_mode = options.prune_mode;
  sopt.mode = options.slicing_mode;
  sopt.shuffle_seed = options.shuffle_seed;

  // Two legs on the pool, the third on the caller's thread — the caller
  // would otherwise just block on the futures.
  auto hier_fut =
      pool.submit([&] { return hier_replay(exec, tree, options.prune_mode); });
  auto slicing_fut = pool.submit([&] { return replay_slicing(exec, sopt); });

  TripleResult out;
  out.central = replay_centralized(exec, copt);
  out.hier = hier_fut.get();
  out.slicing = slicing_fut.get();
  return out;
}

std::vector<std::vector<Solution>> replay_centralized_sharded(
    std::span<const trace::ExecutionRecord> execs, const ReplayOptions& options,
    parallel::ThreadPool& pool) {
  return parallel::parallel_map<std::vector<Solution>>(
      pool, execs.size(),
      [&](std::size_t i) { return replay_centralized(execs[i], options); });
}

std::vector<SlicingReplayResult> replay_slicing_sharded(
    std::span<const trace::ExecutionRecord> execs,
    const SlicingReplayOptions& options, parallel::ThreadPool& pool) {
  return parallel::parallel_map<SlicingReplayResult>(
      pool, execs.size(),
      [&](std::size_t i) { return replay_slicing(execs[i], options); });
}

std::vector<std::vector<Solution>> possibly_replay_sharded(
    std::span<const trace::ExecutionRecord> execs, PossiblyEngine::Mode mode,
    parallel::ThreadPool& pool) {
  return parallel::parallel_map<std::vector<Solution>>(
      pool, execs.size(),
      [&](std::size_t i) { return possibly_replay(execs[i], mode); });
}

}  // namespace hpd::detect::offline
