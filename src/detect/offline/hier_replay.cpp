#include "detect/offline/hier_replay.hpp"

#include <span>

#include "common/assert.hpp"

namespace hpd::detect::offline {

namespace {

struct NodeState {
  std::unique_ptr<QueueEngine> engine;
  SeqNum next_seq = 1;
};

class Replayer {
 public:
  Replayer(const net::SpanningTree& tree, QueueEngine::PruneMode mode)
      : tree_(tree), nodes_(tree.size()) {
    for (std::size_t i = 0; i < tree.size(); ++i) {
      const auto id = static_cast<ProcessId>(i);
      nodes_[i].engine = std::make_unique<QueueEngine>(mode);
      nodes_[i].engine->add_queue(id);
      for (const ProcessId c : tree.children(id)) {
        nodes_[i].engine->add_queue(c);
      }
    }
  }

  void offer(ProcessId node, ProcessId source_key, const Interval& x) {
    NodeState& st = nodes_[idx(node)];
    const auto sols = st.engine->offer(source_key, x);
    for (const Solution& sol : sols) {
      result_.solutions[node].push_back(sol);
      const ProcessId parent = tree_.parent(node);
      if (parent != kNoProcess) {
        const Interval agg = aggregate(
            std::span<const Interval>(sol.members), node, st.next_seq++);
        offer(parent, node, agg);  // cascades further up on success
      } else {
        ++st.next_seq;  // roots still consume a sequence number (parity
                        // with the online engine's aggregate numbering)
      }
    }
  }

  HierReplayResult take() { return std::move(result_); }

 private:
  const net::SpanningTree& tree_;
  std::vector<NodeState> nodes_;
  HierReplayResult result_;
};

}  // namespace

HierReplayResult hier_replay(const trace::ExecutionRecord& exec,
                             const net::SpanningTree& tree,
                             QueueEngine::PruneMode mode) {
  HPD_REQUIRE(exec.num_processes() == tree.size(),
              "hier_replay: execution/tree size mismatch");
  HPD_REQUIRE(tree.valid(), "hier_replay: invalid tree");
  Replayer replayer(tree, mode);
  bool more = true;
  for (std::size_t k = 0; more; ++k) {
    more = false;
    for (std::size_t i = 0; i < exec.num_processes(); ++i) {
      if (k < exec.procs[i].intervals.size()) {
        more = true;
        const auto id = static_cast<ProcessId>(i);
        replayer.offer(id, id, exec.procs[i].intervals[k]);
      }
    }
  }
  return replayer.take();
}

}  // namespace hpd::detect::offline
