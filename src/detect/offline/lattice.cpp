#include "detect/offline/lattice.hpp"

#include <deque>
#include <unordered_set>
#include <vector>

#include "common/assert.hpp"

namespace hpd::detect::offline {

namespace {

using Cut = std::vector<std::size_t>;  // events executed per process

struct CutHash {
  std::size_t operator()(const Cut& c) const {
    std::size_t h = 0xcbf29ce484222325ULL;
    for (const std::size_t v : c) {
      h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

class LatticeWalker {
 public:
  LatticeWalker(const trace::ExecutionRecord& exec,
                const LatticeOptions& options)
      : exec_(exec), options_(options), n_(exec.num_processes()) {
    // The execution must be causally closed (every receive's send is
    // inside), or the final cut is unreachable and Definitely would hold
    // vacuously. Catch the garbage input instead.
    for (std::size_t i = 0; i < n_; ++i) {
      for (const auto& e : exec_.procs[i].events) {
        for (std::size_t j = 0; j < n_; ++j) {
          HPD_REQUIRE(e.vc[j] <= exec_.procs[j].events.size(),
                      "lattice: execution is not causally closed (an event "
                      "knows more of some process than the record contains)");
        }
      }
    }
  }

  /// Can process i execute its next event from `cut` consistently?
  /// Advancing i appends event e = events[cut[i]]; the new cut is
  /// consistent iff every event e depends on is already inside the cut:
  /// e.vc[j] <= cut[j] for all j != i.
  bool can_advance(const Cut& cut, std::size_t i) const {
    const auto& events = exec_.procs[i].events;
    if (cut[i] >= events.size()) {
      return false;
    }
    const VectorClock& vc = events[cut[i]].vc;
    for (std::size_t j = 0; j < n_; ++j) {
      if (j != i && vc[j] > cut[j]) {
        return false;
      }
    }
    return true;
  }

  bool predicate_at(const Cut& cut, std::size_t i) const {
    const auto& p = exec_.procs[i];
    return cut[i] == 0 ? p.initial_predicate
                       : p.events[cut[i] - 1].predicate_after;
  }

  bool phi(const Cut& cut) const {
    for (std::size_t i = 0; i < n_; ++i) {
      if (!predicate_at(cut, i)) {
        return false;
      }
    }
    return true;
  }

  bool is_final(const Cut& cut) const {
    for (std::size_t i = 0; i < n_; ++i) {
      if (cut[i] != exec_.procs[i].events.size()) {
        return false;
      }
    }
    return true;
  }

  /// BFS over reachable consistent cuts. `skip_phi` restricts the walk to
  /// ¬Φ cuts (the Definitely reachability question). `want_phi` makes the
  /// walk stop successfully upon the first Φ cut (the Possibly question).
  /// Returns: for want_phi — whether a Φ cut was found; for skip_phi —
  /// whether the final cut was reached.
  bool walk(bool skip_phi, bool want_phi, std::size_t* states_out = nullptr) {
    Cut init(n_, 0);
    std::unordered_set<Cut, CutHash> seen;
    std::deque<Cut> frontier;
    std::size_t states = 0;

    auto visit = [&](const Cut& cut) -> bool {
      // Returns true if the walk can stop with a positive answer.
      if (want_phi && phi(cut)) {
        return true;
      }
      if (skip_phi && phi(cut)) {
        return false;  // blocked state: do not expand
      }
      if (skip_phi && is_final(cut)) {
        found_final_ = true;
      }
      frontier.push_back(cut);
      return false;
    };

    seen.insert(init);
    ++states;
    if (visit(init)) {
      return true;
    }
    while (!frontier.empty()) {
      const Cut cut = frontier.front();
      frontier.pop_front();
      for (std::size_t i = 0; i < n_; ++i) {
        if (!can_advance(cut, i)) {
          continue;
        }
        Cut next = cut;
        ++next[i];
        if (!seen.insert(next).second) {
          continue;
        }
        ++states;
        HPD_REQUIRE(states <= options_.max_states,
                    "lattice walk exceeded the state budget");
        if (visit(next)) {
          if (states_out != nullptr) {
            *states_out = states;
          }
          return true;
        }
      }
    }
    if (states_out != nullptr) {
      *states_out = states;
    }
    return skip_phi ? found_final_ : false;
  }

 private:
  const trace::ExecutionRecord& exec_;
  LatticeOptions options_;
  std::size_t n_;
  bool found_final_ = false;
};

}  // namespace

bool lattice_possibly(const trace::ExecutionRecord& exec,
                      const LatticeOptions& options) {
  if (exec.num_processes() == 0) {
    return false;
  }
  LatticeWalker walker(exec, options);
  return walker.walk(/*skip_phi=*/false, /*want_phi=*/true);
}

bool lattice_definitely(const trace::ExecutionRecord& exec,
                        const LatticeOptions& options) {
  if (exec.num_processes() == 0) {
    return false;
  }
  LatticeWalker walker(exec, options);
  // Definitely(Φ) ⇔ the final cut is unreachable through ¬Φ cuts.
  const bool final_reached_avoiding_phi =
      walker.walk(/*skip_phi=*/true, /*want_phi=*/false);
  return !final_reached_avoiding_phi;
}

std::size_t count_consistent_cuts(const trace::ExecutionRecord& exec,
                                  const LatticeOptions& options) {
  if (exec.num_processes() == 0) {
    return 0;
  }
  LatticeWalker walker(exec, options);
  std::size_t states = 0;
  walker.walk(/*skip_phi=*/false, /*want_phi=*/false, &states);
  return states;
}

}  // namespace hpd::detect::offline
