// Exhaustive interval-set search: the Garg–Waldecker characterizations of
// Possibly(Φ) and Definitely(Φ) checked directly against every combination
// of one interval per process. Exponential; the property tests use it to
// validate both the lattice walker and the queue detectors on small
// executions.
//
//   Definitely (Eq. (2)):  ∀ i ≠ j: min(x_i) ≺ max(x_j)
//   Possibly   (Eq. (1)):  ∀ i ≠ j: max(x_i) ⊀ min(x_j)
#pragma once

#include <cstddef>
#include <vector>

#include "trace/execution.hpp"

namespace hpd::detect::offline {

/// Every selection (one interval index per process) satisfying the
/// Definitely overlap condition. Empty if any process has no intervals.
std::vector<std::vector<std::size_t>> enumerate_definitely_sets(
    const trace::ExecutionRecord& exec);

/// Every selection satisfying the Possibly condition.
std::vector<std::vector<std::size_t>> enumerate_possibly_sets(
    const trace::ExecutionRecord& exec);

/// Convenience: does any satisfying set exist?
bool definitely_by_intervals(const trace::ExecutionRecord& exec);
bool possibly_by_intervals(const trace::ExecutionRecord& exec);

}  // namespace hpd::detect::offline
