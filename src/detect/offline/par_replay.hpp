// Parallel drivers for the offline replay oracles.
//
// Every replay is a pure function of a recorded execution — fresh engines,
// no shared mutable state — so oracle work parallelizes at two natural
// grains without touching the replay implementations:
//
//   replay_triple()    the three-way differential's hier/centralized/
//                      slicing replays over ONE execution, run as three
//                      pool tasks (the centralized leg runs on the caller's
//                      thread while the other two are in flight)
//   *_sharded()        one replay per execution across a batch, fanned over
//                      the pool with results in input order
//
// Determinism: each function returns exactly what the serial calls would —
// the pool only changes wall-clock, never content (pinned byte-identical
// by the ParallelReplay tests). A single-worker pool degrades to serial
// execution with the same results.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "detect/offline/hier_replay.hpp"
#include "detect/offline/replay.hpp"
#include "detect/offline/slicing_replay.hpp"
#include "detect/possibly.hpp"
#include "net/spanning_tree.hpp"
#include "parallel/thread_pool.hpp"
#include "trace/execution.hpp"

namespace hpd::detect::offline {

struct TripleOptions {
  QueueEngine::PruneMode prune_mode = QueueEngine::PruneMode::kAllEq10;
  SlicingEngine::Mode slicing_mode = SlicingEngine::Mode::kExact;
  /// Shared by the centralized and slicing replays (they already share
  /// arrival_order(), so one seed keeps their schedules identical).
  std::optional<std::uint64_t> shuffle_seed;
};

struct TripleResult {
  HierReplayResult hier;
  std::vector<Solution> central;
  SlicingReplayResult slicing;
};

/// The three offline references over one execution, computed concurrently.
TripleResult replay_triple(const trace::ExecutionRecord& exec,
                           const net::SpanningTree& tree,
                           const TripleOptions& options,
                           parallel::ThreadPool& pool);

/// replay_centralized over each execution, results in input order.
std::vector<std::vector<Solution>> replay_centralized_sharded(
    std::span<const trace::ExecutionRecord> execs, const ReplayOptions& options,
    parallel::ThreadPool& pool);

/// replay_slicing over each execution, results in input order.
std::vector<SlicingReplayResult> replay_slicing_sharded(
    std::span<const trace::ExecutionRecord> execs,
    const SlicingReplayOptions& options, parallel::ThreadPool& pool);

/// possibly_replay over each execution, results in input order.
std::vector<std::vector<Solution>> possibly_replay_sharded(
    std::span<const trace::ExecutionRecord> execs, PossiblyEngine::Mode mode,
    parallel::ThreadPool& pool);

}  // namespace hpd::detect::offline
