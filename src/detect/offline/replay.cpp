#include "detect/offline/replay.hpp"

#include <utility>

#include "common/rng.hpp"

namespace hpd::detect::offline {

std::vector<std::pair<std::size_t, std::size_t>> arrival_order(
    const trace::ExecutionRecord& exec,
    std::optional<std::uint64_t> shuffle_seed) {
  const std::size_t n = exec.num_processes();
  std::vector<std::pair<std::size_t, std::size_t>> arrivals;
  if (shuffle_seed.has_value()) {
    Rng rng(*shuffle_seed);
    std::vector<std::size_t> next(n, 0);
    std::size_t remaining = exec.total_intervals();
    while (remaining > 0) {
      // Pick a random process that still has intervals to deliver.
      std::size_t pick = rng.uniform_index(remaining);
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t left = exec.procs[i].intervals.size() - next[i];
        if (pick < left) {
          arrivals.emplace_back(i, next[i]++);
          break;
        }
        pick -= left;
      }
      --remaining;
    }
  } else {
    // Round-robin by interval index.
    bool more = true;
    for (std::size_t k = 0; more; ++k) {
      more = false;
      for (std::size_t i = 0; i < n; ++i) {
        if (k < exec.procs[i].intervals.size()) {
          arrivals.emplace_back(i, k);
          more = true;
        }
      }
    }
  }
  return arrivals;
}

std::vector<Solution> replay_centralized(const trace::ExecutionRecord& exec,
                                         const ReplayOptions& options) {
  const std::size_t n = exec.num_processes();
  QueueEngine engine(options.prune_mode);
  for (std::size_t i = 0; i < n; ++i) {
    engine.add_queue(static_cast<ProcessId>(i));
  }

  std::vector<Solution> solutions;
  for (const auto& [proc, index] :
       arrival_order(exec, options.shuffle_seed)) {
    auto found = engine.offer(static_cast<ProcessId>(proc),
                              exec.procs[proc].intervals[index]);
    for (auto& sol : found) {
      solutions.push_back(std::move(sol));
      if (!options.repeated) {
        return solutions;  // one-shot detector: detect once, then hang
      }
    }
  }
  return solutions;
}

}  // namespace hpd::detect::offline
