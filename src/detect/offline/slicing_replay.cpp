#include "detect/offline/slicing_replay.hpp"

#include <utility>

#include "detect/offline/replay.hpp"

namespace hpd::detect::offline {

SlicingReplayResult replay_slicing(const trace::ExecutionRecord& exec,
                                   const SlicingReplayOptions& options) {
  const std::size_t n = exec.num_processes();
  SlicingEngine slicer(options.mode, options.prune_mode);
  for (std::size_t i = 0; i < n; ++i) {
    slicer.add_queue(static_cast<ProcessId>(i));
  }

  SlicingReplayResult out;
  for (const auto& [proc, index] :
       arrival_order(exec, options.shuffle_seed)) {
    auto found = slicer.offer(static_cast<ProcessId>(proc),
                              exec.procs[proc].intervals[index]);
    for (auto& sol : found) {
      out.solutions.push_back(std::move(sol));
    }
  }
  out.admitted = slicer.admitted();
  out.discarded_by_slice = slicer.discarded_by_slice();
  out.jcuts_closed = slicer.jcuts_closed();
  return out;
}

}  // namespace hpd::detect::offline
