#include "detect/offline/enumerate.hpp"

#include <functional>

#include "vc/vector_clock.hpp"

namespace hpd::detect::offline {

namespace {

/// Pairwise compatibility for the Definitely condition.
bool def_compatible(const Interval& a, const Interval& b) {
  return vc_less(a.lo, b.hi) && vc_less(b.lo, a.hi);
}

/// Pairwise compatibility for the Possibly condition: the states after
/// some event of a and some event of b coexist in a consistent cut iff
/// neither interval's start knows an event *beyond* the other's last true
/// event. On vector timestamps of raw intervals this is
///   lo(b)[proc(a)] ≤ hi(a)[proc(a)]  ∧  lo(a)[proc(b)] ≤ hi(b)[proc(b)].
/// (The paper's Eq. (1), max(x_i) ⊀ min(x_j), states the same thing with
/// the interval end taken as the *falsifying* event; with hi = last true
/// event the component form below is the exact condition — a min(y) that
/// knows exactly up to max(x) can still share a cut with it.)
bool pos_compatible(const Interval& a, const Interval& b) {
  const std::size_t pa = idx(a.origin);
  const std::size_t pb = idx(b.origin);
  return b.lo[pa] <= a.hi[pa] && a.lo[pb] <= b.hi[pb];
}

std::vector<std::vector<std::size_t>> enumerate(
    const trace::ExecutionRecord& exec,
    const std::function<bool(const Interval&, const Interval&)>& compatible,
    bool first_only) {
  const std::size_t n = exec.num_processes();
  std::vector<std::vector<std::size_t>> out;
  for (const auto& p : exec.procs) {
    if (p.intervals.empty()) {
      return out;  // the conjunction can never be satisfied
    }
  }
  std::vector<std::size_t> chosen(n, 0);
  std::function<bool(std::size_t)> dfs = [&](std::size_t proc) -> bool {
    if (proc == n) {
      out.push_back(chosen);
      return first_only;
    }
    const auto& intervals = exec.procs[proc].intervals;
    for (std::size_t k = 0; k < intervals.size(); ++k) {
      bool ok = true;
      for (std::size_t j = 0; j < proc && ok; ++j) {
        ok = compatible(exec.procs[j].intervals[chosen[j]], intervals[k]);
      }
      if (ok) {
        chosen[proc] = k;
        if (dfs(proc + 1)) {
          return true;
        }
      }
    }
    return false;
  };
  dfs(0);
  return out;
}

}  // namespace

std::vector<std::vector<std::size_t>> enumerate_definitely_sets(
    const trace::ExecutionRecord& exec) {
  return enumerate(exec, def_compatible, /*first_only=*/false);
}

std::vector<std::vector<std::size_t>> enumerate_possibly_sets(
    const trace::ExecutionRecord& exec) {
  return enumerate(exec, pos_compatible, /*first_only=*/false);
}

bool definitely_by_intervals(const trace::ExecutionRecord& exec) {
  return !enumerate(exec, def_compatible, /*first_only=*/true).empty();
}

bool possibly_by_intervals(const trace::ExecutionRecord& exec) {
  return !enumerate(exec, pos_compatible, /*first_only=*/true).empty();
}

}  // namespace hpd::detect::offline
