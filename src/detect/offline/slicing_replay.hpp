// Offline replay of the slicing detector over a recorded execution — the
// slicing-side twin of replay_centralized. Feeds the same arrival schedule
// (arrival_order) into a fresh SlicingEngine and returns the solutions plus
// the slice statistics, so oracles and tests can compare the slicing
// engine's occurrence set against the centralized reference over any
// execution shape, including fault-era recordings the online sink engines
// cannot run (they have no repair path).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "detect/queue_engine.hpp"
#include "detect/slicing.hpp"
#include "trace/execution.hpp"

namespace hpd::detect::offline {

struct SlicingReplayOptions {
  QueueEngine::PruneMode prune_mode = QueueEngine::PruneMode::kAllEq10;
  SlicingEngine::Mode mode = SlicingEngine::Mode::kExact;
  /// Same semantics as ReplayOptions::shuffle_seed.
  std::optional<std::uint64_t> shuffle_seed;
};

struct SlicingReplayResult {
  std::vector<Solution> solutions;
  std::uint64_t admitted = 0;
  std::uint64_t discarded_by_slice = 0;
  std::uint64_t jcuts_closed = 0;
};

SlicingReplayResult replay_slicing(const trace::ExecutionRecord& exec,
                                   const SlicingReplayOptions& options = {});

}  // namespace hpd::detect::offline
