#include "detect/occurrence_io.hpp"

#include <ostream>

namespace hpd::detect {

void write_occurrences_csv(std::ostream& os,
                           const std::vector<OccurrenceRecord>& occ) {
  os << "time,node,index,global,weight\n";
  for (const auto& rec : occ) {
    os << rec.time << ',' << rec.detector << ',' << rec.index << ','
       << (rec.global ? 1 : 0) << ',' << rec.aggregate.weight << "\n";
  }
}

}  // namespace hpd::detect
