// The centralized repeated-detection baseline [12] (Kshemkalyani, IPL 2011):
// a single sink maintains one queue per process and runs the same
// elimination / detection / Eq. (10)-pruning cycle over raw intervals.
//
// All storage and computation concentrate at the sink, and in a multi-hop
// network every interval report is relayed hop-by-hop to the sink — the
// costs the paper's hierarchical algorithm distributes (Table I, Figs. 4–5).
// The relay logic itself lives in the runner (nodes forward kReportCentral
// toward the root); this class is the sink's algorithmic state.
#pragma once

#include <functional>
#include <vector>

#include "common/types.hpp"
#include "detect/occurrence.hpp"
#include "detect/queue_engine.hpp"
#include "detect/reorder.hpp"
#include "interval/interval.hpp"

namespace hpd::parallel {
class ThreadPool;
}  // namespace hpd::parallel

namespace hpd::detect {

class CentralSink {
 public:
  struct Hooks {
    OccurrenceCallback on_occurrence;  ///< every detection is global
    std::function<SimTime()> now;      ///< may be null → 0
  };

  /// `processes` lists every process the conjunction ranges over (including
  /// the sink itself).
  CentralSink(ProcessId self, const std::vector<ProcessId>& processes,
              Hooks hooks,
              QueueEngine::PruneMode mode = QueueEngine::PruneMode::kAllEq10,
              std::size_t queue_capacity = 0);

  ProcessId self() const { return self_; }

  /// A completed local interval of the sink itself (no message involved).
  void local_interval(Interval x);

  /// A raw interval report that reached the sink (x.origin identifies the
  /// source process; the reorder buffer restores per-origin order).
  void report(Interval x);

  /// Extension hook (not part of [12], which has no failure handling):
  /// drop a dead process's queue so the remaining conjunction can progress.
  void remove_process(ProcessId id);

  const QueueEngine& engine() const { return engine_; }
  const ReorderBuffer& reorder() const { return reorder_; }
  SeqNum occurrences() const { return occurrence_count_; }

  /// Optional worker pool (not owned, may be null) for solution-batch
  /// aggregation: batches whose interval-count x clock-width work clears
  /// kParallelAggregateMinWork run through aggregate_parallel(), which is
  /// bit-identical to the serial path (see detect/par_aggregate.hpp) — so
  /// attaching a pool never changes the occurrence stream, only its cost.
  void set_thread_pool(parallel::ThreadPool* pool) { pool_ = pool; }

  // ---- Checkpoint surface (durability) ------------------------------------

  /// Deep image of the sink: the queue engine, the per-origin reorder
  /// state, and the occurrence-numbering counters. A restored sink
  /// continues the global occurrence stream (indices included) exactly
  /// where the snapshot left off.
  struct Snapshot {
    ProcessId self = kNoProcess;
    QueueEngine::Snapshot engine;
    ReorderBuffer::Snapshot reorder;
    SeqNum next_seq = 1;
    SeqNum occurrence_count = 0;
  };

  Snapshot snapshot() const;
  /// The sink must have been constructed with the same `self` and prune
  /// mode (validated; see QueueEngine::restore).
  void restore(const Snapshot& snap);

 private:
  void handle_solutions(const std::vector<Solution>& sols);
  SimTime now() const { return hooks_.now ? hooks_.now() : 0.0; }

  ProcessId self_;
  Hooks hooks_;
  QueueEngine engine_;
  ReorderBuffer reorder_;
  SeqNum next_seq_ = 1;
  SeqNum occurrence_count_ = 0;
  parallel::ThreadPool* pool_ = nullptr;  ///< optional, not owned
};

}  // namespace hpd::detect
