// Work-parallel root-level aggregation: the Eqs. (5)/(6) combine over a
// solution batch, partitioned across a ThreadPool by COMPONENT RANGE.
//
// Each worker owns a disjoint, cache-line-aligned slice of the component
// index space and runs the full k-input meet/join over just that slice —
// per-component max/min are independent, so the result is bit-identical
// to the serial aggregate() no matter how the slices are scheduled (the
// differential test pins this). Partitioning by component (not by input
// interval) is what makes determinism free: there is no combine step and
// no worker ever writes a component another worker reads.
//
// The parallel path only wins once batch-size x clock-width work amortizes
// the pool handoff; below kParallelAggregateMinWork the serial kernels in
// aggregate() are strictly faster. CentralSink consults
// aggregate_should_parallelize() per solution, so small systems never pay
// a synchronization cost.
#pragma once

#include <cstddef>
#include <span>

#include "interval/interval.hpp"
#include "parallel/thread_pool.hpp"

namespace hpd::detect {

/// Minimum batch-size x clock-width product (total component-combine steps)
/// before aggregate_parallel() beats the serial kernels. Measured on the
/// perf-smoke host: a pool handoff plus futures costs ~10us, the SIMD
/// meet_join sustains ~2 components/ns, so the crossover sits around 2^15
/// combine steps; see docs/PERFORMANCE.md.
inline constexpr std::size_t kParallelAggregateMinWork = std::size_t{1} << 15;

/// True iff a batch of `batch` intervals over `n`-component clocks is
/// worth sending through `pool` (null pool or a single-worker pool never
/// qualifies).
bool aggregate_should_parallelize(std::size_t batch, std::size_t n,
                                  const parallel::ThreadPool* pool);

/// Bit-identical to aggregate(xs, origin, seq) — same clocks, weight,
/// completion time, and provenance shape — with the component loop fanned
/// across `pool`. Safe (just pointless) for work below the threshold.
Interval aggregate_parallel(std::span<const Interval> xs, ProcessId origin,
                            SeqNum seq, parallel::ThreadPool& pool);

}  // namespace hpd::detect
