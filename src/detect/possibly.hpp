// Possibly(Φ) detection for conjunctive predicates — the weak-modality
// counterpart (Garg–Chase / Hurfin et al., the paper's refs [8]–[10]),
// provided as a baseline companion to the Definitely(Φ) detectors.
//
// Possibly(Φ) holds iff some consistent cut satisfies every local
// predicate, which for one interval per process is the pairwise
// *coexistence* condition (cf. Eq. (1)):
//     lo(y)[p(x)] ≤ hi(x)[p(x)]  ∧  lo(x)[p(y)] ≤ hi(y)[p(y)]
// i.e. neither interval's start already knows an event beyond the other's
// end. When two heads fail the test, exactly one of them ended causally
// before the other began; that earlier interval can never coexist with the
// later queue's current or future intervals and is eliminated.
//
// The classic algorithms detect once; kRepeatedConsumeAll extends them the
// natural way for monitoring: a detected cut consumes all participating
// heads, and detection continues (each occurrence uses fresh intervals —
// a "distinct witnesses" semantics, stricter than the Definitely
// algorithm's Eq. (10) pruning).
//
// Operates on RAW intervals only (the coexistence test indexes the origin
// components); there is no hierarchical aggregation theory for Possibly in
// the paper.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "common/types.hpp"
#include "detect/occurrence.hpp"
#include "detect/queue_engine.hpp"
#include "detect/reorder.hpp"
#include "interval/interval.hpp"
#include "trace/execution.hpp"

namespace hpd::detect {

class PossiblyEngine {
 public:
  enum class Mode {
    kOneShot,            ///< classic: detect the first cut, then stop
    kRepeatedConsumeAll, ///< monitoring: consume the witnesses, continue
  };

  explicit PossiblyEngine(Mode mode = Mode::kRepeatedConsumeAll)
      : mode_(mode) {}

  void add_queue(ProcessId key);
  bool has_queue(ProcessId key) const { return queues_.count(key) != 0; }
  std::size_t num_queues() const { return queues_.size(); }

  /// Offer a raw interval (key == x.origin); returns solutions found.
  std::vector<Solution> offer(ProcessId key, Interval x);

  bool done() const { return done_; }  ///< one-shot already fired
  std::uint64_t comparisons() const { return comparisons_; }
  std::uint64_t eliminated() const { return eliminated_; }
  std::uint64_t solutions_found() const { return solutions_found_; }
  std::uint64_t offered() const { return offered_; }
  std::size_t stored() const { return stored_; }
  std::size_t stored_peak() const { return stored_peak_; }

 private:
  /// Can the post-states of x and y share a consistent cut?
  bool coexist(const Interval& x, const Interval& y);
  std::vector<Solution> detect_loop(std::vector<ProcessId> updated);

  std::map<ProcessId, std::deque<Interval>> queues_;
  Mode mode_;
  bool done_ = false;
  std::uint64_t comparisons_ = 0;
  std::uint64_t eliminated_ = 0;
  std::uint64_t solutions_found_ = 0;
  std::uint64_t offered_ = 0;
  std::size_t stored_ = 0;
  std::size_t stored_peak_ = 0;
};

/// Offline replay over a recorded execution (round-robin arrival order).
std::vector<Solution> possibly_replay(
    const trace::ExecutionRecord& exec,
    PossiblyEngine::Mode mode = PossiblyEngine::Mode::kRepeatedConsumeAll);

/// On-line sink for Possibly(Φ): mirrors CentralSink (raw intervals are
/// relayed hop-by-hop to the tree root; per-origin reorder buffers restore
/// sequence order) but runs the PossiblyEngine.
class PossiblySink {
 public:
  struct Hooks {
    OccurrenceCallback on_occurrence;
    std::function<SimTime()> now;
  };

  PossiblySink(ProcessId self, const std::vector<ProcessId>& processes,
               Hooks hooks,
               PossiblyEngine::Mode mode =
                   PossiblyEngine::Mode::kRepeatedConsumeAll);

  void local_interval(Interval x);
  void report(Interval x);

  const PossiblyEngine& engine() const { return engine_; }
  SeqNum occurrences() const { return occurrence_count_; }

 private:
  void handle_solutions(const std::vector<Solution>& sols);
  SimTime now() const { return hooks_.now ? hooks_.now() : 0.0; }

  ProcessId self_;
  Hooks hooks_;
  PossiblyEngine engine_;
  ReorderBuffer reorder_;
  SeqNum occurrence_count_ = 0;
};

}  // namespace hpd::detect
