// Text serialization of occurrence logs. Lives in detect/ (not trace/):
// OccurrenceRecord is a detector output, and trace is below detect in the
// include-layering DAG (enforced by tools/hpd_lint, rule `layering`).
#pragma once

#include <iosfwd>
#include <vector>

#include "detect/occurrence.hpp"

namespace hpd::detect {

/// Occurrence log as CSV: time,node,index,global,weight
void write_occurrences_csv(std::ostream& os,
                           const std::vector<OccurrenceRecord>& occ);

}  // namespace hpd::detect
