// Per-origin in-order delivery of interval reports.
//
// The queue algorithm requires intervals from one source to be enqueued in
// succ() order (Theorem 2), but the system model explicitly allows non-FIFO
// channels, so two reports from the same child can overtake each other in
// flight. Each report carries a per-origin sequence number; this buffer
// holds early arrivals until the gap closes. The expected starting sequence
// is established out-of-band (1 at system start; the AttachReq handshake
// after a reattachment).
#pragma once

#include <map>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"
#include "interval/interval.hpp"

namespace hpd::detect {

class ReorderBuffer {
 public:
  /// Start (or restart) tracking `origin`, expecting `first_seq` next.
  /// Pending intervals from a previous incarnation are discarded.
  void track(ProcessId origin, SeqNum first_seq);

  /// Stop tracking `origin`, dropping pending intervals.
  void untrack(ProcessId origin);

  bool tracking(ProcessId origin) const { return streams_.count(origin) != 0; }

  /// Accept a report. Returns the maximal run of in-order intervals now
  /// deliverable (possibly empty; possibly several if x closed a gap).
  /// Reports with seq below the expected value (duplicates, pre-attach
  /// stragglers) are dropped. Unknown origins are dropped too — reports can
  /// legitimately arrive from a child that has already been declared dead.
  std::vector<Interval> push(ProcessId origin, Interval x);

  /// Intervals currently parked (diagnostics / space accounting).
  std::size_t pending() const;
  std::uint64_t dropped_stale() const { return dropped_stale_; }

  // ---- Checkpoint surface (durability) ------------------------------------

  /// Deep image: every tracked stream's expected sequence plus its parked
  /// intervals. Serialized by ckpt/snapshot.
  struct Snapshot {
    struct Stream {
      ProcessId origin = kNoProcess;
      SeqNum expected = 1;
      std::vector<std::pair<SeqNum, Interval>> parked;  ///< ascending seq
    };
    std::vector<Stream> streams;  ///< ascending origin
    std::uint64_t dropped_stale = 0;
  };

  Snapshot snapshot() const;
  void restore(const Snapshot& snap);

 private:
  struct Stream {
    SeqNum expected = 1;
    std::map<SeqNum, Interval> parked;
  };
  std::map<ProcessId, Stream> streams_;
  std::uint64_t dropped_stale_ = 0;
};

}  // namespace hpd::detect
