// Wire-level protocol shared by the application layer, the detection
// algorithms, and the failure-handling layer.
//
// Payloads are typed structs carried in sim::Message::payload (std::any).
// `wire_words` on each payload reports its size in vector-clock words so the
// metrics layer can account message volume in the paper's O(n) units.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "interval/interval.hpp"
#include "vc/vector_clock.hpp"

namespace hpd::proto {

/// Message type tags (sim::Message::type).
enum MsgType : int {
  kApp = 1,            ///< application message (creates happens-before edges)
  kReportHier = 2,     ///< interval report, child → parent (one hop)
  kReportCentral = 3,  ///< interval report relayed hop-by-hop toward the sink
  kHeartbeat = 4,      ///< liveness beacon between tree neighbours
  kProbe = 5,          ///< orphan asking a topology neighbour for its status
  kProbeAck = 6,       ///< neighbour's depth + root path
  kAttachReq = 7,      ///< orphan requesting adoption
  kAttachAck = 8,      ///< adoption confirmed (or refused)
  kDelegate = 9,       ///< orphan delegating the parent search down the subtree
  kDelegateFail = 10,  ///< delegated search exhausted below the sender
  kFlip = 11,          ///< re-rooting: "your former child is now your parent"
  kFlipAck = 12,       ///< flip accepted; carries the new child's first seq
  kFlipGo = 13,        ///< new parent is ready; child may start reporting
  kDisown = 14,        ///< best-effort: "I have declared you dead and dropped
                       ///< your queue" — a live receiver treats its parent as
                       ///< failed and reattaches (false-positive recovery)
};

const char* msg_type_name(int type);

/// Register all names with a MetricsRegistry-compatible sink.
template <typename Registry>
void register_message_names(Registry& reg) {
  for (int t = kApp; t <= kDisown; ++t) {
    reg.name_message_type(t, msg_type_name(t));
  }
}

// ---- Application layer ----------------------------------------------------

struct AppPayload {
  int subtype = 0;      ///< behaviour-defined (e.g. pulse UP / DOWN)
  SeqNum round = 0;     ///< behaviour-defined correlation id
  VectorClock stamp;    ///< sender's vector time (paper rule 2)

  std::size_t wire_words() const { return stamp.wire_size() + 2; }
};

// ---- Detection layer -------------------------------------------------------

struct ReportPayload {
  Interval interval;

  std::size_t wire_words() const { return interval.wire_size(); }
};

// ---- Failure handling ------------------------------------------------------

struct HeartbeatPayload {
  /// Whether the sender currently has a path to a root (false while the
  /// sender — or an ancestor — is orphaned and searching). Propagates down
  /// the tree so descendants of an orphan refuse adoptions/probes that
  /// could form cycles.
  bool attached = false;
  std::vector<ProcessId> root_path;  ///< sender, ..., root (empty if detached)

  std::size_t wire_words() const { return 1 + root_path.size(); }
};

struct ProbePayload {
  std::size_t wire_words() const { return 0; }
};

struct ProbeAckPayload {
  bool attached = false;             ///< responder has a live path to a root
  std::vector<ProcessId> root_path;  ///< responder, ..., root (empty if not)

  std::size_t wire_words() const { return 1 + root_path.size(); }
};

struct AttachReqPayload {
  SeqNum next_report_seq = 1;  ///< seq of the first report the new parent sees

  std::size_t wire_words() const { return 1; }
};

struct AttachAckPayload {
  bool accepted = false;

  std::size_t wire_words() const { return 1; }
};

/// Subtree-wide parent search (Section III-F allows the reconnecting link
/// to start at *any* node of the orphaned subtree, not just its root).
struct DelegatePayload {
  ProcessId orphan = kNoProcess;  ///< root of the searching subtree

  std::size_t wire_words() const { return 1; }
};

struct DelegateFailPayload {
  ProcessId orphan = kNoProcess;

  std::size_t wire_words() const { return 1; }
};

/// Edge-flip chain that re-roots an orphaned subtree at the node which
/// found an outside parent. Sent from the new parent to its former parent.
struct FlipPayload {
  ProcessId orphan = kNoProcess;

  std::size_t wire_words() const { return 1; }
};

struct FlipAckPayload {
  SeqNum first_seq = 1;  ///< first report sequence the new parent will see

  std::size_t wire_words() const { return 1; }
};

struct FlipGoPayload {
  std::size_t wire_words() const { return 0; }
};

struct DisownPayload {
  std::size_t wire_words() const { return 0; }
};

}  // namespace hpd::proto
