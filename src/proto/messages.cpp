#include "proto/messages.hpp"

namespace hpd::proto {

const char* msg_type_name(int type) {
  switch (type) {
    case kApp:
      return "app";
    case kReportHier:
      return "report-hier";
    case kReportCentral:
      return "report-central";
    case kHeartbeat:
      return "heartbeat";
    case kProbe:
      return "probe";
    case kProbeAck:
      return "probe-ack";
    case kAttachReq:
      return "attach-req";
    case kAttachAck:
      return "attach-ack";
    case kDelegate:
      return "delegate";
    case kDelegateFail:
      return "delegate-fail";
    case kFlip:
      return "flip";
    case kFlipAck:
      return "flip-ack";
    case kFlipGo:
      return "flip-go";
    case kDisown:
      return "disown";
    default:
      return "unknown";
  }
}

}  // namespace hpd::proto
