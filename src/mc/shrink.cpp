#include "mc/shrink.hpp"

#include <algorithm>
#include <functional>

namespace hpd::mc {

namespace {

/// One attempted reduction: mutate the case toward "smaller"; return false
/// if the dimension is already minimal (candidate skipped).
using Reduction = std::function<bool(McCase&)>;

std::vector<Reduction> reductions() {
  return {
      // Topology ladder: every spec eventually reaches the 3-node tree.
      [](McCase& c) {
        if (c.topology == "grid:3x3") {
          c.topology = "grid:2x3";
        } else if (c.topology == "grid:2x3" || c.topology == "dary:2:3" ||
                   c.topology == "dary:3:2") {
          c.topology = "dary:2:2";
        } else {
          return false;
        }
        return true;
      },
      // Fewer intervals per process — the dominant size lever.
      [](McCase& c) {
        if (c.max_intervals <= 1) {
          return false;
        }
        c.max_intervals = std::max<std::size_t>(1, c.max_intervals / 2);
        return true;
      },
      [](McCase& c) {
        if (c.max_intervals <= 1) {
          return false;
        }
        --c.max_intervals;
        return true;
      },
      // Shorter workload.
      [](McCase& c) {
        if (c.workload == WorkloadKind::kGossip) {
          if (c.horizon <= 40.0) {
            return false;
          }
          c.horizon = std::max(40.0, c.horizon / 2.0);
        } else {
          if (c.pulse_rounds <= 2) {
            return false;
          }
          c.pulse_rounds = std::max<SeqNum>(2, c.pulse_rounds / 2);
        }
        return true;
      },
      [](McCase& c) {
        if (c.workload != WorkloadKind::kPulse || c.pulse_rounds <= 2) {
          return false;
        }
        --c.pulse_rounds;
        return true;
      },
      // Sparser gossip: longer gaps mean fewer events in the same window.
      [](McCase& c) {
        if (c.workload != WorkloadKind::kGossip || c.mean_gap >= 8.0) {
          return false;
        }
        c.mean_gap *= 1.5;
        return true;
      },
      // Tame the schedule strategy before dropping it entirely.
      [](McCase& c) {
        if (c.strategy == StrategyKind::kSeedSweep) {
          return false;
        }
        c.strategy = StrategyKind::kSeedSweep;
        c.delay_bound = 0.0;
        c.perturb_p = 0.0;
        c.pct_lanes = 0;
        c.pct_spread = 0.0;
        return true;
      },
      // Strip the fault plan, one dimension at a time.
      [](McCase& c) {
        if (c.recoveries.empty()) {
          return false;
        }
        c.recoveries.pop_back();
        return true;
      },
      [](McCase& c) {
        // Recoveries without the matching crash make no sense; drop both.
        if (c.crashes.empty()) {
          return false;
        }
        const ProcessId victim = c.crashes.back().node;
        c.crashes.pop_back();
        std::erase_if(c.recoveries,
                      [victim](const runner::FailureEvent& ev) {
                        return ev.node == victim;
                      });
        return true;
      },
      [](McCase& c) {
        if (c.drop_app_p == 0.0 && c.dup_app_p == 0.0 &&
            c.drop_report_p == 0.0 && c.dup_report_p == 0.0) {
          return false;
        }
        c.drop_app_p = c.dup_app_p = c.drop_report_p = c.dup_report_p = 0.0;
        return true;
      },
      // Lift resource bounds (a capacity-free failure is a stronger repro).
      [](McCase& c) {
        if (c.queue_capacity == 0) {
          return false;
        }
        c.queue_capacity = 0;
        return true;
      },
  };
}

}  // namespace

ShrinkResult shrink(const McCase& failing, std::size_t budget) {
  ShrinkResult best;
  best.minimal = failing;

  RunOutcome out = run_case(failing);
  ++best.runs;
  best.violations = out.violations;
  best.events = out.total_intervals;
  if (out.ok()) {
    return best;  // nothing to shrink
  }

  const auto steps = reductions();
  // Greedy fixpoint: keep sweeping the reduction list until a full sweep
  // makes no progress (or the budget runs out). Accept a candidate iff it
  // still fails AND is no larger than the current champion — a reduction
  // that leaves the execution the same size is still progress (simpler
  // case), but one that grows it is not.
  bool progressed = true;
  while (progressed && best.runs < budget) {
    progressed = false;
    for (const auto& step : steps) {
      if (best.runs >= budget) {
        break;
      }
      McCase candidate = best.minimal;
      if (!step(candidate)) {
        continue;
      }
      const RunOutcome attempt = run_case(candidate);
      ++best.runs;
      if (!attempt.ok() && attempt.total_intervals <= best.events) {
        best.minimal = candidate;
        best.violations = attempt.violations;
        best.events = attempt.total_intervals;
        progressed = true;
      }
    }
  }
  return best;
}

}  // namespace hpd::mc
