// Delta-debugging shrinker: given a failing McCase, greedily search for the
// smallest case (fewest base intervals in the recorded execution) that still
// violates an oracle. Candidate reductions shrink the topology, the
// workload, the fault plan, and the schedule strategy one dimension at a
// time; a candidate is kept iff the re-run still fails. The result is what
// gets written to a repro file (mc/repro.hpp) for `hpd_sim --repro`.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "mc/checker.hpp"
#include "mc/mc_case.hpp"

namespace hpd::mc {

struct ShrinkResult {
  McCase minimal;                       ///< smallest still-failing case
  std::vector<std::string> violations;  ///< its oracle violations
  std::size_t events = 0;  ///< base intervals in the minimal execution
  std::size_t runs = 0;    ///< re-executions spent shrinking
};

/// Minimize `failing` (which must have run_case(failing).ok() == false;
/// if it does not fail, it is returned unchanged). At most `budget`
/// re-executions are spent.
ShrinkResult shrink(const McCase& failing, std::size_t budget = 200);

}  // namespace hpd::mc
