// A model-checking case: one fully-described adversarial schedule.
//
// An McCase is plain serializable data — system shape, workload, detector
// settings, schedule strategy, fault plan, seed — from which build_case()
// derives a deterministic ExperimentConfig. The same McCase always produces
// the same execution, the same detections, and the same oracle verdicts,
// which is what makes failing cases shrinkable (mc/shrink.hpp) and
// replayable from a repro file (mc/repro.hpp, `hpd_sim --repro`).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "detect/queue_engine.hpp"
#include "runner/experiment.hpp"

namespace hpd::mc {

enum class WorkloadKind {
  kGossip,  ///< irregular predicate toggles + random sends (trace/gossip)
  kPulse,   ///< synchronized truth rounds, participation 1 (trace/pulse)
};

enum class StrategyKind {
  kSeedSweep,     ///< baseline delay model; adversity comes from the seed
  kDelayBounded,  ///< perturb a random subset of messages by up to a bound
  kPct,           ///< PCT-style random priority lanes (lane k waits k·spread)
};

/// Which detection engine judges the schedule. Fault plans (crashes,
/// recoveries) require kHier — the sink engines have no repair plane, so
/// the heartbeat layer and the structural fault oracles only apply there.
enum class EngineKind {
  kHier,     ///< the paper's hierarchical detector (default)
  kCentral,  ///< centralized sink baseline [12]
  kSlicing,  ///< computation-slicing sink (detect/slicing)
  /// Test-only: slicing with the deliberately broken join-irreducible
  /// computation (SlicingEngine::Mode::kTestBrokenEagerDoom). The strict
  /// oracle must catch the solutions it loses.
  kTestBrokenSlicing,
};

struct McCase {
  // ---- System shape -------------------------------------------------------
  /// `dary:D:H` (paper-model tree; cross links added when the fault plan
  /// crashes nodes, so repair has somewhere to reattach) or `grid:RxC`
  /// (BFS tree rooted at 0).
  std::string topology = "dary:2:3";

  // ---- Workload -----------------------------------------------------------
  WorkloadKind workload = WorkloadKind::kGossip;
  SimTime horizon = 160.0;  ///< gossip action window
  double mean_gap = 4.0;
  double p_send = 0.45;
  double p_toggle = 0.35;
  std::size_t max_intervals = 8;  ///< the paper's p, per process
  SeqNum pulse_rounds = 6;
  SimTime pulse_period = 40.0;

  // ---- Detection ----------------------------------------------------------
  EngineKind engine = EngineKind::kHier;
  detect::QueueEngine::PruneMode prune =
      detect::QueueEngine::PruneMode::kAllEq10;
  std::size_t queue_capacity = 0;

  // ---- Schedule strategy --------------------------------------------------
  StrategyKind strategy = StrategyKind::kSeedSweep;
  SimTime delay_bound = 0.0;   ///< kDelayBounded: max extra delay
  double perturb_p = 0.0;      ///< kDelayBounded: fraction perturbed
  std::size_t pct_lanes = 0;   ///< kPct: number of priority lanes
  SimTime pct_spread = 0.0;    ///< kPct: extra delay per lane

  // ---- Fault plan ---------------------------------------------------------
  std::vector<runner::FailureEvent> crashes;
  std::vector<runner::FailureEvent> recoveries;
  double drop_app_p = 0.0;     ///< drop probability, application messages
  double dup_app_p = 0.0;      ///< duplicate probability, application msgs
  double drop_report_p = 0.0;  ///< drop probability, interval reports
  double dup_report_p = 0.0;   ///< duplicate probability, interval reports

  // ---- Live-transport chaos plan (rt backend only) ------------------------
  // Frame-level fault injection below the reliable session layer, mirroring
  // the strategy-level drop/dup knobs above for the live backend (see
  // rt/chaos.hpp). The session layer masks these faults end-to-end —
  // retransmission recovers drops, duplicate suppression absorbs copies —
  // so they deliberately do NOT count as faults for has_faults()/strict():
  // the strict differential oracle is expected to hold under them. The sim
  // backend has no frame boundary and ignores them.
  double chaos_drop_p = 0.0;
  double chaos_dup_p = 0.0;
  double chaos_corrupt_p = 0.0;
  double chaos_reset_p = 0.0;
  double chaos_delay_p = 0.0;
  SimTime chaos_delay_max = 4.0;

  std::uint64_t seed = 1;

  bool has_live_chaos() const {
    return chaos_drop_p > 0.0 || chaos_dup_p > 0.0 || chaos_corrupt_p > 0.0 ||
           chaos_reset_p > 0.0 || chaos_delay_p > 0.0;
  }

  /// Anything that can make the online run structurally diverge from the
  /// failure-free offline reference: crashes, recoveries, lost reports.
  /// (Dropped/duplicated app messages reshape the execution itself, and
  /// duplicated reports are absorbed by the reorder buffer, so neither
  /// breaks the differential oracle.)
  bool has_faults() const {
    return !crashes.empty() || !recoveries.empty() || drop_report_p > 0.0;
  }

  /// Eligible for the exact per-node differential against the offline
  /// hierarchical replay. Capacity-bounded queues legitimately miss
  /// detections, so they are excluded too.
  bool strict() const { return !has_faults() && queue_capacity == 0; }

  /// Eligible for the surviving-subtree coverage oracle: a pulse workload
  /// (every live node contributes each round) under the baseline schedule,
  /// with the repair plane undisturbed.
  bool coverage_checkable() const {
    return workload == WorkloadKind::kPulse && !crashes.empty() &&
           strategy == StrategyKind::kSeedSweep && drop_report_p == 0.0 &&
           dup_report_p == 0.0 && drop_app_p == 0.0;
  }

  /// The prune mode the offline ground truth must run with (the broken
  /// test-only mode is checked against the correct rule).
  detect::QueueEngine::PruneMode ground_truth_prune() const {
    return prune == detect::QueueEngine::PruneMode::kTestBrokenPruneAll
               ? detect::QueueEngine::PruneMode::kAllEq10
               : prune;
  }
};

/// Derive the deterministic experiment for this case. The returned config
/// has `strategy == nullptr`; the case runner installs a CaseStrategy whose
/// lifetime spans run_experiment (see mc/checker.cpp).
runner::ExperimentConfig build_case(const McCase& c);

const char* to_string(WorkloadKind k);
const char* to_string(StrategyKind k);
const char* to_string(EngineKind k);
const char* to_string(detect::QueueEngine::PruneMode m);

}  // namespace hpd::mc
