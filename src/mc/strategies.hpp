// The schedule strategies the model checker injects into sim::Network.
//
// One concrete ScheduleStrategy interprets the McCase: it reshapes delays
// according to the chosen exploration strategy (seed-sweep / delay-bounded /
// PCT-style lanes) and enacts the fault plan's per-layer message drops and
// duplications. All decisions are drawn from the network's RNG in send
// order, so the schedule is a pure function of (case, seed).
#pragma once

#include "mc/mc_case.hpp"
#include "sim/strategy.hpp"

namespace hpd::mc {

class CaseStrategy final : public sim::ScheduleStrategy {
 public:
  explicit CaseStrategy(const McCase& c) : c_(c) {}

  sim::DeliveryPlan plan(const sim::Message& msg, const sim::DelayModel& base,
                         Rng& rng) override;

 private:
  const McCase& c_;
};

}  // namespace hpd::mc
