#include "mc/mc_case.hpp"

#include <memory>
#include <sstream>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "net/spanning_tree.hpp"
#include "net/topology.hpp"
#include "trace/gossip.hpp"
#include "trace/pulse.hpp"

namespace hpd::mc {

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, sep)) {
    out.push_back(item);
  }
  return out;
}

std::size_t num(const std::string& s) {
  return static_cast<std::size_t>(std::stoul(s));
}

}  // namespace

runner::ExperimentConfig build_case(const McCase& c) {
  runner::ExperimentConfig cfg;

  // ---- Topology + tree ----
  const auto parts = split(c.topology, ':');
  HPD_REQUIRE(!parts.empty(), "McCase: empty topology spec");
  if (parts[0] == "dary") {
    HPD_REQUIRE(parts.size() == 3, "McCase: dary:D:H expected");
    const std::size_t d = num(parts[1]);
    const std::size_t h = num(parts[2]);
    cfg.tree = net::SpanningTree::balanced_dary(d, h);
    cfg.topology = net::tree_topology(cfg.tree);
    if (!c.crashes.empty()) {
      // Repair needs non-tree edges to reattach over. Deterministic in the
      // case seed, independent of everything else.
      Rng cross_rng(c.seed ^ 0xc7055ULL);
      cfg.topology =
          net::Topology::tree_plus_crosslinks(cfg.topology, 2 * h, cross_rng);
    }
  } else if (parts[0] == "grid") {
    HPD_REQUIRE(parts.size() == 2, "McCase: grid:RxC expected");
    const auto rc = split(parts[1], 'x');
    HPD_REQUIRE(rc.size() == 2, "McCase: grid:RxC expected");
    cfg.topology = net::Topology::grid(num(rc[0]), num(rc[1]));
    cfg.tree = net::SpanningTree::bfs_tree(cfg.topology, 0);
  } else {
    HPD_REQUIRE(false, "McCase: unknown topology kind");
  }

  // ---- Workload ----
  if (c.workload == WorkloadKind::kGossip) {
    trace::GossipConfig g;
    g.horizon = c.horizon;
    g.mean_gap = c.mean_gap;
    g.p_send = c.p_send;
    g.p_toggle = c.p_toggle;
    g.max_intervals = c.max_intervals;
    cfg.behavior_factory = [g](ProcessId) {
      return std::make_unique<trace::GossipBehavior>(g);
    };
    cfg.horizon = c.horizon + 15.0;
  } else {
    trace::PulseConfig p;
    p.rounds = c.pulse_rounds;
    p.period = c.pulse_period;
    p.participation = 1.0;
    p.jitter = 1.0;
    p.start = 5.0;
    cfg.behavior_factory = [p](ProcessId) {
      return std::make_unique<trace::PulseBehavior>(p);
    };
    cfg.horizon =
        p.start + static_cast<SimTime>(p.rounds) * p.period + p.period;
  }
  cfg.drain = 80.0;

  // ---- Detection ----
  switch (c.engine) {
    case EngineKind::kHier:
      cfg.detector = runner::DetectorKind::kHierarchical;
      break;
    case EngineKind::kCentral:
      cfg.detector = runner::DetectorKind::kCentralized;
      break;
    case EngineKind::kSlicing:
      cfg.detector = runner::DetectorKind::kSlicing;
      break;
    case EngineKind::kTestBrokenSlicing:
      cfg.detector = runner::DetectorKind::kSlicing;
      cfg.slicing_mode = detect::SlicingEngine::Mode::kTestBrokenEagerDoom;
      break;
  }
  cfg.prune_mode = c.prune;
  cfg.queue_capacity = c.queue_capacity;
  cfg.track_provenance = true;
  cfg.record_execution = true;
  cfg.keep_occurrence_records = true;
  cfg.occurrence_solutions = true;

  // ---- Fault plan ----
  cfg.failures = c.crashes;
  cfg.recoveries = c.recoveries;
  // Heartbeats + repair exist only in the hierarchical stack; sink-engine
  // cases with a fault plan run the faults without repair (and the
  // structural fault oracles are hier-gated accordingly).
  cfg.heartbeats = (!c.crashes.empty() || !c.recoveries.empty()) &&
                   c.engine == EngineKind::kHier;

  cfg.seed = c.seed;
  return cfg;
}

const char* to_string(WorkloadKind k) {
  return k == WorkloadKind::kGossip ? "gossip" : "pulse";
}

const char* to_string(StrategyKind k) {
  switch (k) {
    case StrategyKind::kSeedSweep:
      return "seed";
    case StrategyKind::kDelayBounded:
      return "delay";
    case StrategyKind::kPct:
      return "pct";
  }
  return "?";
}

const char* to_string(EngineKind k) {
  switch (k) {
    case EngineKind::kHier:
      return "hier";
    case EngineKind::kCentral:
      return "central";
    case EngineKind::kSlicing:
      return "slicing";
    case EngineKind::kTestBrokenSlicing:
      return "broken-slicing";
  }
  return "?";
}

const char* to_string(detect::QueueEngine::PruneMode m) {
  switch (m) {
    case detect::QueueEngine::PruneMode::kAllEq10:
      return "all";
    case detect::QueueEngine::PruneMode::kSingleEq10:
      return "single";
    case detect::QueueEngine::PruneMode::kTestBrokenPruneAll:
      return "broken-all";
  }
  return "?";
}

}  // namespace hpd::mc
