// Repro files: a failing (or interesting) McCase serialized as a small
// line-oriented text file, so a model-checker failure can be re-executed
// outside the test suite:
//
//   tools/hpd_sim --repro FILE
//
// re-runs the exact case and re-evaluates its oracles. The format is
// versioned ("hpd-mc-repro v1" header), key/value per line, with repeatable
// `crash T NODE` / `recover T NODE` lines for the fault plan.
#pragma once

#include <iosfwd>
#include <string>

#include "mc/mc_case.hpp"

namespace hpd::mc {

/// Serialize to the textual repro format (round-trips through parse_repro).
std::string to_repro(const McCase& c);

/// Parse a repro document. HPD_REQUIREs on malformed input.
McCase parse_repro(const std::string& text);

/// Write `c` to `path`; returns false on I/O failure.
bool save_repro(const McCase& c, const std::string& path);

/// Load a repro file. HPD_REQUIREs on I/O failure or malformed content.
McCase load_repro(const std::string& path);

/// Re-run a repro file and report to `out` (verdict, oracle violations,
/// run statistics). Returns 0 if every oracle passed, 1 otherwise — the
/// exit code of `hpd_sim --repro`.
int replay_repro(const std::string& path, std::ostream& out);

}  // namespace hpd::mc
