// Invariant oracles run after every model-checked schedule.
//
// Three tiers, chosen per case (see McCase::strict / coverage_checkable):
//
//  * Always: occurrence-stream sanity (indices consecutive from 1, times
//    monotone per detector, per-origin member sequence numbers monotone per
//    Eq. (10) / Theorem 2), global-count consistency, and provenance
//    soundness — every reported solution's base intervals exist in the
//    recorded execution and pairwise satisfy the non-strict Definitely
//    overlap min(x_i) ≤ max(x_j) (the cut-level bound implied by Theorem 1
//    and the Eq. (7) aggregate bounds).
//
//  * Strict (failure-free, unbounded queues): exact per-node differential
//    against the offline hierarchical replay (detect/offline/hier_replay),
//    duplicate-free occurrence streams, solution coverage == the detector's
//    subtree, and — on small executions — agreement with the exhaustive
//    Garg–Waldecker enumeration (detect/offline/enumerate).
//
//  * Faulty: detections only inside the detector's alive windows, the final
//    forest structurally valid, and for pulse workloads under the baseline
//    schedule (coverage_checkable) the surviving-subtree coverage property
//    of Section III-F: once repair has settled, the (unique) surviving root
//    keeps detecting, and its detections cover exactly the live processes.
#pragma once

#include <string>
#include <vector>

#include "mc/mc_case.hpp"
#include "runner/experiment.hpp"

namespace hpd::mc {

/// Run every applicable oracle; returns human-readable violations
/// (empty = run passed).
std::vector<std::string> check_oracles(const McCase& c,
                                       const runner::ExperimentConfig& cfg,
                                       const runner::ExperimentResult& res);

}  // namespace hpd::mc
