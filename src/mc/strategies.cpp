#include "mc/strategies.hpp"

#include "proto/messages.hpp"

namespace hpd::mc {

sim::DeliveryPlan CaseStrategy::plan(const sim::Message& msg,
                                     const sim::DelayModel& base, Rng& rng) {
  SimTime delay = base.sample(rng);
  switch (c_.strategy) {
    case StrategyKind::kSeedSweep:
      break;
    case StrategyKind::kDelayBounded:
      // Delay-bounded reordering: each message is independently held back by
      // up to delay_bound extra time units with probability perturb_p. Any
      // reordering reachable with <= delay_bound of skew is reachable here.
      if (rng.bernoulli(c_.perturb_p)) {
        delay += rng.uniform_real(0.0, c_.delay_bound);
      }
      break;
    case StrategyKind::kPct: {
      // PCT-style random priorities: every message draws a priority lane;
      // lane k is uniformly slower by k·spread, so low-priority messages
      // systematically lose races against high-priority ones — the
      // bug-depth-biased exploration of Burckhardt et al.'s probabilistic
      // concurrency testing, approximated with delays instead of a central
      // scheduler.
      const std::size_t lanes = c_.pct_lanes == 0 ? 1 : c_.pct_lanes;
      const auto lane = rng.uniform_index(lanes);
      delay += static_cast<SimTime>(lane) * c_.pct_spread;
      break;
    }
  }

  // Fault plan: layer-targeted drops and duplications. Only application
  // traffic and interval reports are perturbed; the failure-handling plane
  // (heartbeats, attach/flip handshakes) stays intact so that tree repair
  // remains live and the oracle classification in McCase::strict() holds.
  double drop_p = 0.0;
  double dup_p = 0.0;
  if (msg.type == proto::kApp) {
    drop_p = c_.drop_app_p;
    dup_p = c_.dup_app_p;
  } else if (msg.type == proto::kReportHier ||
             msg.type == proto::kReportCentral) {
    drop_p = c_.drop_report_p;
    dup_p = c_.dup_report_p;
  }
  if (drop_p > 0.0 && rng.bernoulli(drop_p)) {
    return sim::DeliveryPlan::drop();
  }
  sim::DeliveryPlan out = sim::DeliveryPlan::deliver(delay);
  if (dup_p > 0.0 && rng.bernoulli(dup_p)) {
    out.delays.push_back(delay + base.sample(rng));
  }
  return out;
}

}  // namespace hpd::mc
