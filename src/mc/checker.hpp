// The model checker's driver: run one case end-to-end (build config, install
// the schedule strategy, run the experiment, check every applicable oracle),
// plus deterministic generators for the three case families the test suite
// sweeps — seed sweeps, delay-bounded / PCT reorderings, and fault plans.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mc/mc_case.hpp"

namespace hpd::mc {

/// One checked schedule: the oracle verdicts plus the metrics the shrinker
/// minimizes by.
struct RunOutcome {
  std::vector<std::string> violations;  ///< empty == schedule passed
  std::size_t total_intervals = 0;      ///< the shrinker's size metric
  std::size_t occurrences = 0;
  std::uint64_t global_count = 0;
  /// FNV-1a digest of the occurrence stream and the recorded execution's
  /// event times: two runs with equal digests took the same schedule.
  std::uint64_t fingerprint = 0;

  bool ok() const { return violations.empty(); }
};

/// Deterministically run `c` and evaluate its oracles.
RunOutcome run_case(const McCase& c);

// ---- Case families ---------------------------------------------------------
// All generators are pure functions of (count, seed0): the k-th case of a
// family is stable across runs and machines, so a failure cited by family
// and index is immediately reproducible.

/// Failure-free gossip workloads under the baseline delay model; adversity
/// comes from sweeping the simulation seed and the workload shape. Strict
/// oracles (exact offline differential) apply to every case.
std::vector<McCase> seed_sweep_cases(std::size_t count, std::uint64_t seed0);

/// Failure-free cases under delay-bounded reordering and PCT-style priority
/// lanes, with benign message chaos (app-message drops/duplicates, report
/// duplicates) that the strict oracles still fully cover.
std::vector<McCase> reorder_cases(std::size_t count, std::uint64_t seed0);

/// Crash / crash-recovery plans on redundant topologies, pulse workloads;
/// checked with the structural fault oracles, most with the surviving-
/// subtree coverage oracle. A minority adds report-drop chaos (stream
/// sanity oracles only).
std::vector<McCase> fault_cases(std::size_t count, std::uint64_t seed0);

// ---- Exploration -----------------------------------------------------------

struct CaseFailure {
  McCase c;
  std::vector<std::string> violations;
};

struct ExploreStats {
  std::size_t schedules = 0;  ///< cases run
  std::size_t failed = 0;     ///< cases with >= 1 oracle violation
  /// The first few failing cases, kept for reporting / shrinking.
  std::vector<CaseFailure> failures;
};

/// Run every case, collecting up to `max_failures` failing cases.
ExploreStats explore(const std::vector<McCase>& cases,
                     std::size_t max_failures = 4);

}  // namespace hpd::mc
