#include "mc/repro.hpp"

#include <fstream>
#include <ostream>
#include <sstream>
#include <string>

#include "common/assert.hpp"
#include "mc/checker.hpp"

namespace hpd::mc {

namespace {

constexpr const char* kHeader = "hpd-mc-repro v1";

WorkloadKind parse_workload(const std::string& s) {
  if (s == "gossip") {
    return WorkloadKind::kGossip;
  }
  HPD_REQUIRE(s == "pulse", "repro: unknown workload");
  return WorkloadKind::kPulse;
}

StrategyKind parse_strategy(const std::string& s) {
  if (s == "seed") {
    return StrategyKind::kSeedSweep;
  }
  if (s == "delay") {
    return StrategyKind::kDelayBounded;
  }
  HPD_REQUIRE(s == "pct", "repro: unknown strategy");
  return StrategyKind::kPct;
}

EngineKind parse_engine(const std::string& s) {
  if (s == "hier") {
    return EngineKind::kHier;
  }
  if (s == "central") {
    return EngineKind::kCentral;
  }
  if (s == "slicing") {
    return EngineKind::kSlicing;
  }
  HPD_REQUIRE(s == "broken-slicing", "repro: unknown engine");
  return EngineKind::kTestBrokenSlicing;
}

detect::QueueEngine::PruneMode parse_prune(const std::string& s) {
  if (s == "all") {
    return detect::QueueEngine::PruneMode::kAllEq10;
  }
  if (s == "single") {
    return detect::QueueEngine::PruneMode::kSingleEq10;
  }
  HPD_REQUIRE(s == "broken-all", "repro: unknown prune mode");
  return detect::QueueEngine::PruneMode::kTestBrokenPruneAll;
}

}  // namespace

std::string to_repro(const McCase& c) {
  std::ostringstream os;
  os.precision(17);  // doubles must round-trip exactly
  os << kHeader << '\n';
  os << "topology " << c.topology << '\n';
  os << "workload " << to_string(c.workload) << '\n';
  os << "horizon " << c.horizon << '\n';
  os << "mean_gap " << c.mean_gap << '\n';
  os << "p_send " << c.p_send << '\n';
  os << "p_toggle " << c.p_toggle << '\n';
  os << "max_intervals " << c.max_intervals << '\n';
  os << "pulse_rounds " << c.pulse_rounds << '\n';
  os << "pulse_period " << c.pulse_period << '\n';
  os << "engine " << to_string(c.engine) << '\n';
  os << "prune " << to_string(c.prune) << '\n';
  os << "queue_capacity " << c.queue_capacity << '\n';
  os << "strategy " << to_string(c.strategy) << '\n';
  os << "delay_bound " << c.delay_bound << '\n';
  os << "perturb_p " << c.perturb_p << '\n';
  os << "pct_lanes " << c.pct_lanes << '\n';
  os << "pct_spread " << c.pct_spread << '\n';
  for (const auto& ev : c.crashes) {
    os << "crash " << ev.time << ' ' << ev.node << '\n';
  }
  for (const auto& ev : c.recoveries) {
    os << "recover " << ev.time << ' ' << ev.node << '\n';
  }
  os << "drop_app_p " << c.drop_app_p << '\n';
  os << "dup_app_p " << c.dup_app_p << '\n';
  os << "drop_report_p " << c.drop_report_p << '\n';
  os << "dup_report_p " << c.dup_report_p << '\n';
  os << "chaos_drop_p " << c.chaos_drop_p << '\n';
  os << "chaos_dup_p " << c.chaos_dup_p << '\n';
  os << "chaos_corrupt_p " << c.chaos_corrupt_p << '\n';
  os << "chaos_reset_p " << c.chaos_reset_p << '\n';
  os << "chaos_delay_p " << c.chaos_delay_p << '\n';
  os << "chaos_delay_max " << c.chaos_delay_max << '\n';
  os << "seed " << c.seed << '\n';
  return os.str();
}

McCase parse_repro(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  HPD_REQUIRE(std::getline(in, line) && line == kHeader,
              "repro: missing 'hpd-mc-repro v1' header");

  McCase c;
  c.crashes.clear();
  c.recoveries.clear();
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    bool ok = true;
    if (key == "topology") {
      ls >> c.topology;
    } else if (key == "workload") {
      std::string v;
      ls >> v;
      c.workload = parse_workload(v);
    } else if (key == "horizon") {
      ls >> c.horizon;
    } else if (key == "mean_gap") {
      ls >> c.mean_gap;
    } else if (key == "p_send") {
      ls >> c.p_send;
    } else if (key == "p_toggle") {
      ls >> c.p_toggle;
    } else if (key == "max_intervals") {
      ls >> c.max_intervals;
    } else if (key == "pulse_rounds") {
      ls >> c.pulse_rounds;
    } else if (key == "pulse_period") {
      ls >> c.pulse_period;
    } else if (key == "engine") {
      std::string v;
      ls >> v;
      c.engine = parse_engine(v);
    } else if (key == "prune") {
      std::string v;
      ls >> v;
      c.prune = parse_prune(v);
    } else if (key == "queue_capacity") {
      ls >> c.queue_capacity;
    } else if (key == "strategy") {
      std::string v;
      ls >> v;
      c.strategy = parse_strategy(v);
    } else if (key == "delay_bound") {
      ls >> c.delay_bound;
    } else if (key == "perturb_p") {
      ls >> c.perturb_p;
    } else if (key == "pct_lanes") {
      ls >> c.pct_lanes;
    } else if (key == "pct_spread") {
      ls >> c.pct_spread;
    } else if (key == "crash" || key == "recover") {
      runner::FailureEvent ev;
      ls >> ev.time >> ev.node;
      (key == "crash" ? c.crashes : c.recoveries).push_back(ev);
    } else if (key == "drop_app_p") {
      ls >> c.drop_app_p;
    } else if (key == "dup_app_p") {
      ls >> c.dup_app_p;
    } else if (key == "drop_report_p") {
      ls >> c.drop_report_p;
    } else if (key == "dup_report_p") {
      ls >> c.dup_report_p;
    } else if (key == "chaos_drop_p") {
      ls >> c.chaos_drop_p;
    } else if (key == "chaos_dup_p") {
      ls >> c.chaos_dup_p;
    } else if (key == "chaos_corrupt_p") {
      ls >> c.chaos_corrupt_p;
    } else if (key == "chaos_reset_p") {
      ls >> c.chaos_reset_p;
    } else if (key == "chaos_delay_p") {
      ls >> c.chaos_delay_p;
    } else if (key == "chaos_delay_max") {
      ls >> c.chaos_delay_max;
    } else if (key == "seed") {
      ls >> c.seed;
    } else {
      ok = false;
    }
    HPD_REQUIRE(ok, "repro: unknown key");
    HPD_REQUIRE(!ls.fail(), "repro: malformed value");
  }
  return c;
}

bool save_repro(const McCase& c, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << to_repro(c);
  return static_cast<bool>(out);
}

McCase load_repro(const std::string& path) {
  std::ifstream in(path);
  HPD_REQUIRE(static_cast<bool>(in), "repro: cannot open file");
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_repro(buf.str());
}

int replay_repro(const std::string& path, std::ostream& out) {
  const McCase c = load_repro(path);
  out << "repro: " << path << '\n'
      << "  topology=" << c.topology << " workload=" << to_string(c.workload)
      << " strategy=" << to_string(c.strategy)
      << " engine=" << to_string(c.engine) << " prune=" << to_string(c.prune)
      << " seed=" << c.seed << '\n'
      << "  crashes=" << c.crashes.size()
      << " recoveries=" << c.recoveries.size() << '\n';
  const RunOutcome res = run_case(c);
  out << "  intervals=" << res.total_intervals
      << " occurrences=" << res.occurrences
      << " global=" << res.global_count << '\n';
  if (res.ok()) {
    out << "repro: PASS (all oracles hold)\n";
    return 0;
  }
  out << "repro: FAIL (" << res.violations.size() << " oracle violation"
      << (res.violations.size() == 1 ? "" : "s") << ")\n";
  for (const auto& v : res.violations) {
    out << "  - " << v << '\n';
  }
  return 1;
}

}  // namespace hpd::mc
