#include "mc/checker.hpp"

#include <cstring>

#include "common/rng.hpp"
#include "mc/oracles.hpp"
#include "mc/strategies.hpp"
#include "runner/experiment.hpp"

namespace hpd::mc {

namespace {

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t time_bits(SimTime t) {
  std::uint64_t u = 0;
  std::memcpy(&u, &t, sizeof(u));
  return u;
}

/// Digest everything schedule-sensitive: occurrence times and aggregate
/// clocks, plus every recorded event's time. Two runs agree on this iff
/// they took the same delivery schedule (message timing feeds back into
/// the workload, so even a count-preserving reordering shifts the bits).
std::uint64_t digest(const runner::ExperimentResult& res) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const auto& rec : res.occurrences) {
    h = fnv1a(h, static_cast<std::uint64_t>(rec.detector));
    h = fnv1a(h, rec.index);
    h = fnv1a(h, time_bits(rec.time));
    for (std::size_t i = 0; i < rec.aggregate.lo.size(); ++i) {
      h = fnv1a(h, static_cast<std::uint64_t>(rec.aggregate.lo[i]));
      h = fnv1a(h, static_cast<std::uint64_t>(rec.aggregate.hi[i]));
    }
  }
  for (const auto& proc : res.execution.procs) {
    for (const auto& ev : proc.events) {
      h = fnv1a(h, time_bits(ev.time));
    }
  }
  return h;
}

}  // namespace

RunOutcome run_case(const McCase& c) {
  runner::ExperimentConfig cfg = build_case(c);
  CaseStrategy strategy(c);
  cfg.strategy = &strategy;
  const runner::ExperimentResult res = runner::run_experiment(cfg);

  RunOutcome out;
  out.violations = check_oracles(c, cfg, res);
  out.total_intervals = res.execution.total_intervals();
  out.occurrences = res.occurrences.size();
  out.global_count = res.global_count;
  out.fingerprint = digest(res);
  return out;
}

namespace {

const char* const kStrictTopologies[] = {
    "dary:2:2", "dary:2:3", "dary:3:2", "grid:2x3", "grid:3x3",
};

/// Vary the gossip workload shape so sweeps explore sparse and dense
/// interval patterns, not just schedules.
void randomize_gossip(McCase& c, Rng& rng) {
  c.workload = WorkloadKind::kGossip;
  c.horizon = 80.0 + 20.0 * static_cast<SimTime>(rng.uniform_index(5));
  c.mean_gap = rng.uniform_real(2.5, 6.0);
  c.p_send = rng.uniform_real(0.2, 0.6);
  c.p_toggle = rng.uniform_real(0.2, 0.5);
  c.max_intervals = 2 + rng.uniform_index(7);
}

}  // namespace

std::vector<McCase> seed_sweep_cases(std::size_t count, std::uint64_t seed0) {
  Rng rng(seed0);
  std::vector<McCase> out;
  out.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    McCase c;
    c.topology = kStrictTopologies[k % std::size(kStrictTopologies)];
    randomize_gossip(c, rng);
    // Both sound prune rules take turns; the ablation variant must satisfy
    // the same differential (vs a kSingleEq10 replay).
    c.prune = rng.bernoulli(0.25)
                  ? detect::QueueEngine::PruneMode::kSingleEq10
                  : detect::QueueEngine::PruneMode::kAllEq10;
    c.strategy = StrategyKind::kSeedSweep;
    c.seed = rng();
    out.push_back(c);
  }
  return out;
}

std::vector<McCase> reorder_cases(std::size_t count, std::uint64_t seed0) {
  Rng rng(seed0);
  std::vector<McCase> out;
  out.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    McCase c;
    c.topology = kStrictTopologies[k % std::size(kStrictTopologies)];
    randomize_gossip(c, rng);
    if (k % 2 == 0) {
      c.strategy = StrategyKind::kDelayBounded;
      c.delay_bound = rng.uniform_real(2.0, 12.0);
      c.perturb_p = rng.uniform_real(0.2, 0.9);
    } else {
      c.strategy = StrategyKind::kPct;
      c.pct_lanes = 2 + rng.uniform_index(4);
      c.pct_spread = rng.uniform_real(1.0, 4.0);
    }
    // Benign chaos the strict oracles absorb: lost/duplicated application
    // messages reshape the (recorded) execution itself, duplicated reports
    // are deduplicated by the reorder buffer.
    if (rng.bernoulli(0.4)) {
      c.drop_app_p = rng.uniform_real(0.02, 0.15);
    }
    if (rng.bernoulli(0.4)) {
      c.dup_app_p = rng.uniform_real(0.02, 0.15);
    }
    if (rng.bernoulli(0.4)) {
      c.dup_report_p = rng.uniform_real(0.02, 0.2);
    }
    c.seed = rng();
    out.push_back(c);
  }
  return out;
}

std::vector<McCase> fault_cases(std::size_t count, std::uint64_t seed0) {
  Rng rng(seed0);
  std::vector<McCase> out;
  out.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    McCase c;
    // Topologies with redundant links, so tree repair has edges to use.
    c.topology = (k % 2 == 0) ? "grid:3x3" : "dary:2:3";
    c.workload = WorkloadKind::kPulse;
    c.pulse_rounds = 8;
    c.pulse_period = 40.0;
    c.strategy = StrategyKind::kSeedSweep;

    const std::size_t n = (k % 2 == 0) ? 9 : 7;
    // Crash one or two non-root nodes mid-run; sometimes revive the first.
    const std::size_t num_crashes = 1 + rng.uniform_index(2);
    SimTime when = rng.uniform_real(30.0, 90.0);
    for (std::size_t f = 0; f < num_crashes; ++f) {
      runner::FailureEvent ev;
      ev.node = static_cast<ProcessId>(1 + rng.uniform_index(n - 1));
      ev.time = when;
      if (!c.crashes.empty() && c.crashes.back().node == ev.node) {
        continue;  // duplicate victim adds nothing
      }
      c.crashes.push_back(ev);
      when += rng.uniform_real(20.0, 60.0);
    }
    if (rng.bernoulli(0.4)) {
      runner::FailureEvent ev;
      ev.node = c.crashes.front().node;
      ev.time = when + rng.uniform_real(20.0, 60.0);
      c.recoveries.push_back(ev);
    }
    if (k % 5 == 4) {
      // A minority with lossy report channels: the differential and
      // coverage oracles no longer apply (McCase::has_faults /
      // coverage_checkable), but the stream-sanity tier must still hold.
      c.drop_report_p = rng.uniform_real(0.05, 0.25);
    }
    c.seed = rng();
    out.push_back(c);
  }
  return out;
}

ExploreStats explore(const std::vector<McCase>& cases,
                     std::size_t max_failures) {
  ExploreStats stats;
  for (const auto& c : cases) {
    const RunOutcome out = run_case(c);
    ++stats.schedules;
    if (!out.ok()) {
      ++stats.failed;
      if (stats.failures.size() < max_failures) {
        stats.failures.push_back(CaseFailure{c, out.violations});
      }
    }
  }
  return stats;
}

}  // namespace hpd::mc
