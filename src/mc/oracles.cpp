#include "mc/oracles.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "detect/offline/enumerate.hpp"
#include "detect/offline/hier_replay.hpp"
#include "detect/offline/replay.hpp"
#include "interval/interval.hpp"
#include "vc/vector_clock.hpp"

namespace hpd::mc {

namespace {

/// A solution identified by its base intervals: the union of the members'
/// provenance leaves, sorted by (origin, seq). Robust to member order and to
/// where in the hierarchy aggregation happened — the representation both the
/// online detector and the offline replay can be compared in.
using BaseSet = std::vector<std::pair<ProcessId, SeqNum>>;

BaseSet bases_of_members(const std::vector<Interval>& members) {
  BaseSet out;
  for (const auto& m : members) {
    const auto part = base_intervals(m);
    out.insert(out.end(), part.begin(), part.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string show(const BaseSet& bases) {
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < bases.size(); ++i) {
    os << (i ? " " : "") << 'P' << bases[i].first << '#' << bases[i].second;
  }
  os << '}';
  return os.str();
}

bool vc_equal(const VectorClock& a, const VectorClock& b) {
  return vc_leq(a, b) && vc_leq(b, a);
}

/// Alive windows per node, derived from the fault plan. A node is alive
/// outside every (crash, recovery] window; `eps` absorbs same-timestamp
/// scheduling ties between the failure event and a detection.
class AliveTimeline {
 public:
  AliveTimeline(const McCase& c, std::size_t n) : windows_(n) {
    for (const auto& f : c.crashes) {
      if (static_cast<std::size_t>(f.node) < n) {
        windows_[static_cast<std::size_t>(f.node)].emplace_back(f.time, kCrash);
      }
    }
    for (const auto& f : c.recoveries) {
      if (static_cast<std::size_t>(f.node) < n) {
        windows_[static_cast<std::size_t>(f.node)].emplace_back(f.time,
                                                                kRecover);
      }
    }
    for (auto& w : windows_) {
      std::sort(w.begin(), w.end());
    }
  }

  bool alive_at(ProcessId node, SimTime t) const {
    // A fault event scheduled at exactly t ties with a detection at t in
    // the event queue (a revived node detects the instant its recovery
    // fires), so the node counts as alive if it is alive on either side
    // of the instant.
    constexpr SimTime eps = 1e-6;
    bool before = true;
    bool after = true;
    for (const auto& [when, kind] : windows_[static_cast<std::size_t>(node)]) {
      if (when < t - eps) {
        before = (kind == kRecover);
      }
      if (when <= t + eps) {
        after = (kind == kRecover);
      }
    }
    return before || after;
  }

 private:
  enum Kind { kCrash = 0, kRecover = 1 };
  std::vector<std::vector<std::pair<SimTime, Kind>>> windows_;
};

/// Cap per run so a systematically broken case does not drown the report.
constexpr std::size_t kMaxViolations = 16;

class Report {
 public:
  bool full() const { return out_.size() >= kMaxViolations; }
  void add(std::string msg) {
    if (!full()) {
      out_.push_back(std::move(msg));
    }
  }
  std::vector<std::string> take() { return std::move(out_); }

 private:
  std::vector<std::string> out_;
};

// ---- Tier 1: always-on stream sanity + provenance soundness ----------------

void check_streams(const McCase& c, const runner::ExperimentResult& res,
                   Report& rep) {
  struct DetectorState {
    SeqNum last_index = 0;
    SeqNum last_agg_seq = 0;
    SimTime last_time = 0.0;
    std::map<ProcessId, SeqNum> last_member_seq;
  };
  std::map<ProcessId, DetectorState> per_detector;
  std::uint64_t globals = 0;

  for (const auto& rec : res.occurrences) {
    auto& st = per_detector[rec.detector];
    std::ostringstream at;
    at << "P" << rec.detector << " occurrence #" << rec.index << " (t="
       << rec.time << ")";

    // Occurrence indices are consecutive from 1 per detector, monotone
    // across crash incarnations (hier_engine keeps its counters).
    if (rec.index != st.last_index + 1) {
      rep.add(at.str() + ": index not consecutive (previous " +
              std::to_string(st.last_index) + ")");
    }
    st.last_index = rec.index;

    if (rec.time + 1e-9 < st.last_time) {
      rep.add(at.str() + ": detection time went backwards");
    }
    st.last_time = std::max(st.last_time, rec.time);

    if (rec.latency() < -1e-9) {
      rep.add(at.str() + ": negative detection latency");
    }

    // The reported aggregate is generated at the detector and, by
    // Theorem 2, its per-origin sequence numbers are strictly monotone.
    if (rec.aggregate.origin != rec.detector) {
      rep.add(at.str() + ": aggregate origin is not the detector");
    }
    if (rec.aggregate.seq <= st.last_agg_seq) {
      rep.add(at.str() + ": aggregate seq not strictly increasing");
    }
    st.last_agg_seq = std::max(st.last_agg_seq, rec.aggregate.seq);

    if (rec.solution.empty()) {
      rep.add(at.str() + ": recorded solution has no members");
      continue;
    }

    // Members: pairwise cut-level Definitely overlap (the non-strict bound
    // implied by Theorem 1 via the Eq. (7) aggregate bounds), and per-origin
    // seq monotonicity across solutions — Eq. (10) never removes a head and
    // later reports an older one, except when a repair legitimately restores
    // a pruned head (fault runs only).
    std::uint32_t weight = 0;
    for (std::size_t i = 0; i < rec.solution.size(); ++i) {
      weight += rec.solution[i].weight;
      for (std::size_t j = i + 1; j < rec.solution.size(); ++j) {
        if (!overlap_cuts(rec.solution[i], rec.solution[j])) {
          rep.add(at.str() + ": members " + std::to_string(i) + " and " +
                  std::to_string(j) + " do not cut-overlap");
        }
      }
    }
    if (c.strict()) {
      for (const auto& m : rec.solution) {
        auto [it, fresh] = st.last_member_seq.emplace(m.origin, m.seq);
        if (!fresh && m.seq < it->second) {
          rep.add(at.str() + ": member seq for origin " +
                  std::to_string(m.origin) + " went backwards");
        }
        it->second = std::max(it->second, m.seq);
      }
    }

    // Aggregate == ⊓(solution), recomputed from scratch (Eqs. (5)/(6)).
    const Interval expect = aggregate(rec.solution, rec.aggregate.origin,
                                      rec.aggregate.seq);
    if (!vc_equal(expect.lo, rec.aggregate.lo) ||
        !vc_equal(expect.hi, rec.aggregate.hi)) {
      rep.add(at.str() + ": reported aggregate != recomputed ⊓(solution)");
    }
    if (rec.aggregate.weight != weight) {
      rep.add(at.str() + ": aggregate weight != sum of member weights");
    }

    // Provenance soundness: every base interval a member claims to cover
    // exists in the recorded execution, with matching sequence number.
    for (const auto& m : rec.solution) {
      for (const auto& [origin, seq] : base_intervals(m)) {
        const auto o = static_cast<std::size_t>(origin);
        bool found = false;
        if (o < res.execution.procs.size()) {
          for (const auto& base : res.execution.procs[o].intervals) {
            if (base.seq == seq) {
              found = true;
              break;
            }
          }
        }
        if (!found) {
          rep.add(at.str() + ": provenance names P" + std::to_string(origin) +
                  "#" + std::to_string(seq) +
                  ", absent from the recorded execution");
        }
      }
    }

    if (rec.global) {
      ++globals;
    }
  }

  if (globals != res.global_count) {
    rep.add("global_count=" + std::to_string(res.global_count) +
            " but " + std::to_string(globals) +
            " records are flagged global");
  }
}

// ---- Tier 2: strict differential vs the offline references -----------------

void check_strict(const McCase& c, const runner::ExperimentConfig& cfg,
                  const runner::ExperimentResult& res, Report& rep) {
  const auto replay = detect::offline::hier_replay(res.execution, cfg.tree,
                                                   c.ground_truth_prune());

  // Group the online stream per detector, as base sets.
  std::map<ProcessId, std::vector<BaseSet>> online;
  for (const auto& rec : res.occurrences) {
    online[rec.detector].push_back(bases_of_members(rec.solution));
  }

  for (ProcessId node = 0;
       node < static_cast<ProcessId>(cfg.tree.size()) && !rep.full(); ++node) {
    const auto* sols = [&]() -> const std::vector<detect::Solution>* {
      const auto it = replay.solutions.find(node);
      return it == replay.solutions.end() ? nullptr : &it->second;
    }();
    const std::size_t expect_n = sols ? sols->size() : 0;
    const auto& got = online[node];

    if (got.size() != expect_n) {
      rep.add("P" + std::to_string(node) + ": online found " +
              std::to_string(got.size()) + " solutions, offline replay " +
              std::to_string(expect_n));
    }
    const std::size_t n = std::min(got.size(), expect_n);
    for (std::size_t k = 0; k < n; ++k) {
      const BaseSet expect = bases_of_members((*sols)[k].members);
      if (got[k] != expect) {
        rep.add("P" + std::to_string(node) + " solution " +
                std::to_string(k + 1) + ": online " + show(got[k]) +
                " != offline " + show(expect));
      }
    }

    // Duplicate-free streams, and exact subtree coverage: a failure-free
    // detector's solutions draw from exactly its subtree's processes.
    std::set<BaseSet> seen;
    const auto subtree = cfg.tree.subtree(node);
    const std::set<ProcessId> scope(subtree.begin(), subtree.end());
    for (std::size_t k = 0; k < got.size(); ++k) {
      if (!seen.insert(got[k]).second) {
        rep.add("P" + std::to_string(node) + " solution " +
                std::to_string(k + 1) + ": duplicate base set " +
                show(got[k]));
      }
      std::set<ProcessId> origins;
      for (const auto& [origin, seq] : got[k]) {
        origins.insert(origin);
      }
      if (origins != scope) {
        rep.add("P" + std::to_string(node) + " solution " +
                std::to_string(k + 1) + ": coverage != subtree(" +
                std::to_string(node) + ")");
      }
    }
  }

  // Exhaustive cross-check on small executions: the root detects at least
  // one solution iff a Definitely(Φ) interval selection exists (Eq. (2)).
  std::size_t combos = 1;
  for (const auto& p : res.execution.procs) {
    combos *= std::max<std::size_t>(1, p.intervals.size());
    if (combos > 20000) {
      break;
    }
  }
  if (combos <= 20000) {
    const bool expect = detect::offline::definitely_by_intervals(res.execution);
    const auto it = replay.solutions.find(cfg.tree.root());
    const bool got = it != replay.solutions.end() && !it->second.empty();
    if (expect != got) {
      rep.add(std::string("enumeration says Definitely(Φ) ") +
              (expect ? "holds" : "does not hold") + " but the root found " +
              (got ? "a" : "no") + " solution");
    }
  }
}

/// Strict differential for the sink engines (central / slicing): the sink's
/// online global stream must match the centralized offline replay solution
/// for solution — the engines are confluent, so the replay's round-robin
/// arrival order and the network's delivery order produce the same solution
/// sequence. The slicing engine's admission filter discards only intervals
/// provably outside the slice, so it is held to the *same* reference; the
/// broken-slicing test mode loses real solutions and fails exactly here.
void check_strict_sink(const McCase& c, const runner::ExperimentConfig& cfg,
                       const runner::ExperimentResult& res, Report& rep) {
  detect::offline::ReplayOptions opt;
  opt.prune_mode = c.ground_truth_prune();
  const auto replay = detect::offline::replay_centralized(res.execution, opt);

  const ProcessId sink = cfg.tree.root();
  std::vector<BaseSet> got;
  for (const auto& rec : res.occurrences) {
    if (rec.detector != sink) {
      rep.add("P" + std::to_string(rec.detector) + " occurrence #" +
              std::to_string(rec.index) +
              ": sink-engine detection away from the sink");
      continue;
    }
    got.push_back(bases_of_members(rec.solution));
  }

  if (got.size() != replay.size()) {
    rep.add("sink P" + std::to_string(sink) + ": online found " +
            std::to_string(got.size()) + " solutions, offline replay " +
            std::to_string(replay.size()));
  }
  const std::size_t n = std::min(got.size(), replay.size());
  for (std::size_t k = 0; k < n && !rep.full(); ++k) {
    const BaseSet expect = bases_of_members(replay[k].members);
    if (got[k] != expect) {
      rep.add("sink P" + std::to_string(sink) + " solution " +
              std::to_string(k + 1) + ": online " + show(got[k]) +
              " != offline " + show(expect));
    }
  }

  // Duplicate-free stream; every solution draws from all processes (the
  // sink's conjunction scope is the whole system).
  std::set<BaseSet> seen;
  for (std::size_t k = 0; k < got.size() && !rep.full(); ++k) {
    if (!seen.insert(got[k]).second) {
      rep.add("sink P" + std::to_string(sink) + " solution " +
              std::to_string(k + 1) + ": duplicate base set " + show(got[k]));
    }
    std::set<ProcessId> origins;
    for (const auto& [origin, seq] : got[k]) {
      origins.insert(origin);
    }
    if (origins.size() != cfg.tree.size()) {
      rep.add("sink P" + std::to_string(sink) + " solution " +
              std::to_string(k + 1) + ": coverage != all processes");
    }
  }

  // Exhaustive cross-check on small executions (same bound as the
  // hierarchical tier): solutions exist iff Definitely(Φ) holds.
  std::size_t combos = 1;
  for (const auto& p : res.execution.procs) {
    combos *= std::max<std::size_t>(1, p.intervals.size());
    if (combos > 20000) {
      break;
    }
  }
  if (combos <= 20000) {
    const bool expect = detect::offline::definitely_by_intervals(res.execution);
    if (expect != !replay.empty()) {
      rep.add(std::string("enumeration says Definitely(Φ) ") +
              (expect ? "holds" : "does not hold") +
              " but the centralized replay found " +
              (!replay.empty() ? "a" : "no") + " solution");
    }
  }
}

// ---- Tier 3: fault-run structural checks -----------------------------------

void check_faulty(const McCase& c, const runner::ExperimentConfig& cfg,
                  const runner::ExperimentResult& res, Report& rep) {
  const std::size_t n = cfg.tree.size();
  const AliveTimeline timeline(c, n);

  // No detections while dead.
  for (const auto& rec : res.occurrences) {
    if (!timeline.alive_at(rec.detector, rec.time)) {
      rep.add("P" + std::to_string(rec.detector) + " occurrence #" +
              std::to_string(rec.index) + " at t=" +
              std::to_string(rec.time) + " while crashed");
    }
  }

  // Final control state: every live node hangs off a live parent (or is a
  // root); dead nodes are detached.
  std::size_t live_roots = 0;
  ProcessId root = kNoProcess;
  for (std::size_t i = 0; i < n; ++i) {
    const ProcessId parent = res.final_parents[i];
    if (!res.final_alive[i]) {
      continue;
    }
    if (parent == kNoProcess) {
      ++live_roots;
      root = static_cast<ProcessId>(i);
    } else if (!res.final_alive[static_cast<std::size_t>(parent)]) {
      rep.add("P" + std::to_string(i) + " ends attached to crashed parent P" +
              std::to_string(parent));
    }
  }
  if (live_roots == 0) {
    rep.add("no live root at the end of the run");
  }

  // Surviving-subtree coverage (Section III-F): after repair settles, the
  // unique surviving root keeps detecting globally, and its detections
  // cover exactly the live processes. Margins follow recovery_test: two
  // pulse periods after the last fault, and only if a full pulse round
  // starts after that.
  if (!c.coverage_checkable()) {
    return;
  }
  if (live_roots != 1) {
    // More than one live root is a legitimate partition, not a bug: on tree
    // topologies a crashed internal node strands its children (their only
    // physical neighbor is gone), and a late revival may not have
    // re-attached yet. Coverage is unobservable then.
    return;
  }
  SimTime last_fault = 0.0;
  for (const auto& f : c.crashes) {
    last_fault = std::max(last_fault, f.time);
  }
  for (const auto& f : c.recoveries) {
    last_fault = std::max(last_fault, f.time);
  }
  const SimTime settle = last_fault + 2.0 * c.pulse_period;
  bool settled_round = false;
  for (SeqNum k = 0; k < c.pulse_rounds; ++k) {
    const SimTime start = 5.0 + static_cast<SimTime>(k) * c.pulse_period;
    if (start >= settle + c.pulse_period) {
      settled_round = true;
    }
  }
  if (!settled_round) {
    return;  // the fault plan leaves no post-repair round to observe
  }

  std::set<ProcessId> alive;
  for (std::size_t i = 0; i < n; ++i) {
    if (res.final_alive[i]) {
      alive.insert(static_cast<ProcessId>(i));
    }
  }
  const detect::OccurrenceRecord* last = nullptr;
  for (const auto& rec : res.occurrences) {
    if (rec.detector == root && rec.global && rec.time > settle) {
      last = &rec;
    }
  }
  if (last == nullptr) {
    rep.add("coverage: no global detection at surviving root P" +
            std::to_string(root) + " after settle t=" +
            std::to_string(settle));
    return;
  }
  std::set<ProcessId> covered;
  for (const auto& [origin, seq] : bases_of_members(last->solution)) {
    covered.insert(origin);
  }
  if (covered != alive) {
    rep.add("coverage: last settled detection at P" + std::to_string(root) +
            " covers " + std::to_string(covered.size()) + " processes, " +
            std::to_string(alive.size()) + " are alive");
  }
}

}  // namespace

std::vector<std::string> check_oracles(const McCase& c,
                                       const runner::ExperimentConfig& cfg,
                                       const runner::ExperimentResult& res) {
  Report rep;
  check_streams(c, res, rep);
  if (c.strict()) {
    if (c.engine == EngineKind::kHier) {
      check_strict(c, cfg, res, rep);
    } else {
      check_strict_sink(c, cfg, res, rep);
    }
  }
  // The structural fault oracles (alive timeline vs the repair plane,
  // forest validity, surviving-subtree coverage) describe the hierarchical
  // stack; sink engines have no repair to validate.
  if ((!c.crashes.empty() || !c.recoveries.empty()) &&
      c.engine == EngineKind::kHier) {
    check_faulty(c, cfg, res, rep);
  }
  return rep.take();
}

}  // namespace hpd::mc
