// Differential vector-clock transmission (Singhal–Kshemkalyani '92).
//
// Between two consecutive messages on the same channel only a few clock
// components usually change; sending (index, value) pairs for the changed
// components cuts the paper's O(n) per-message timestamp cost to O(changes)
// in practice. Encoder and decoder keep per-channel state (the last clock
// transmitted); like the original technique this requires FIFO delivery on
// the channel it compresses — pair it with a FIFO transport (e.g.
// DelayModel::fixed), or wrap with a resynchronizing sequence layer. Every
// `resync_every` messages a full clock is sent, bounding the damage of a
// lost peer state in long-running deployments.
//
// Wire format per clock:
//   u8 kind: 0 = full, 1 = delta
//   full:  varint n, n varint components
//   delta: varint k, k × (varint index-gap, varint value)
//          (index-gap = index − previous-index, first gap = index + 1 ≥ 1)
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "vc/vector_clock.hpp"
#include "wire/codec.hpp"

namespace hpd::wire {

class DeltaClockEncoder {
 public:
  /// `resync_every` = 0 disables periodic full clocks.
  explicit DeltaClockEncoder(std::size_t n, std::size_t resync_every = 64);

  /// Encode `vc` relative to the previous clock sent on this channel.
  /// Clock components must be monotonically non-decreasing between calls
  /// (true for any vector clock stream from one sender).
  std::vector<std::uint8_t> encode(const VectorClock& vc);

  std::uint64_t bytes_emitted() const { return bytes_emitted_; }
  std::uint64_t full_clocks_sent() const { return full_sent_; }

 private:
  VectorClock last_;
  bool have_last_ = false;
  std::size_t resync_every_;
  std::size_t since_full_ = 0;
  std::uint64_t bytes_emitted_ = 0;
  std::uint64_t full_sent_ = 0;
};

class DeltaClockDecoder {
 public:
  explicit DeltaClockDecoder(std::size_t n);

  /// Decode the next clock on this channel. Throws DecodeError on
  /// malformed input or a delta arriving before any full clock.
  VectorClock decode(std::span<const std::uint8_t> bytes);

 private:
  VectorClock last_;
  bool have_last_ = false;
};

}  // namespace hpd::wire
