#include "wire/frame.hpp"

#include <array>

namespace hpd::wire {

namespace {

std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> table{};
  constexpr std::uint32_t kPoly = 0x82F63B78u;  // 0x1EDC6F41 reflected
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<std::uint32_t, 256>& crc32c_table() {
  static const std::array<std::uint32_t, 256> table = make_crc32c_table();
  return table;
}

/// Length prefixes are ordinary LEB128 varints but capped at 5 bytes —
/// enough for kMaxFramePayload — so a garbage stream cannot make the reader
/// buffer unbounded amounts while "waiting" for a huge length.
constexpr std::size_t kMaxLenBytes = 5;

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80u);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

}  // namespace

std::uint32_t crc32c(std::span<const std::uint8_t> bytes, std::uint32_t seed) {
  const auto& table = crc32c_table();
  std::uint32_t crc = ~seed;
  for (const std::uint8_t b : bytes) {
    crc = (crc >> 8) ^ table[(crc ^ b) & 0xFFu];
  }
  return ~crc;
}

void append_frame(std::vector<std::uint8_t>& out,
                  std::span<const std::uint8_t> payload) {
  if (payload.size() > kMaxFramePayload) {
    throw FrameError("frame payload exceeds kMaxFramePayload");
  }
  out.reserve(out.size() + payload.size() + kMaxLenBytes + 4);
  put_varint(out, payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
  const std::uint32_t crc = crc32c(payload);
  out.push_back(static_cast<std::uint8_t>(crc & 0xFFu));
  out.push_back(static_cast<std::uint8_t>((crc >> 8) & 0xFFu));
  out.push_back(static_cast<std::uint8_t>((crc >> 16) & 0xFFu));
  out.push_back(static_cast<std::uint8_t>((crc >> 24) & 0xFFu));
}

std::vector<std::uint8_t> frame(std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> out;
  append_frame(out, payload);
  return out;
}

void FrameReader::poison(const char* what) {
  poisoned_ = true;
  buf_.clear();
  pos_ = 0;
  throw FrameError(what);
}

void FrameReader::feed(std::span<const std::uint8_t> bytes) {
  if (poisoned_) {
    throw FrameError("frame reader poisoned by earlier corruption");
  }
  // Reclaim the consumed prefix before growing (amortized O(1) per byte).
  if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > 4096)) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

std::optional<std::vector<std::uint8_t>> FrameReader::next() {
  if (poisoned_) {
    throw FrameError("frame reader poisoned by earlier corruption");
  }
  // Decode the length prefix without committing pos_ (it may be truncated).
  std::uint64_t len = 0;
  std::size_t shift = 0;
  std::size_t used = 0;
  while (true) {
    if (pos_ + used >= buf_.size()) {
      return std::nullopt;  // truncated length prefix: wait for more bytes
    }
    if (used >= kMaxLenBytes) {
      poison("frame length prefix too long");
    }
    const std::uint8_t b = buf_[pos_ + used];
    ++used;
    len |= static_cast<std::uint64_t>(b & 0x7Fu) << shift;
    if ((b & 0x80u) == 0) {
      break;
    }
    shift += 7;
  }
  if (len > kMaxFramePayload) {
    poison("frame payload length exceeds kMaxFramePayload");
  }
  const std::size_t total = used + static_cast<std::size_t>(len) + 4;
  if (buf_.size() - pos_ < total) {
    return std::nullopt;  // truncated body or checksum: wait for more bytes
  }
  const std::uint8_t* body = buf_.data() + pos_ + used;
  const std::uint8_t* tail = body + len;
  const std::uint32_t expect = static_cast<std::uint32_t>(tail[0]) |
                               static_cast<std::uint32_t>(tail[1]) << 8 |
                               static_cast<std::uint32_t>(tail[2]) << 16 |
                               static_cast<std::uint32_t>(tail[3]) << 24;
  const std::uint32_t got =
      crc32c(std::span<const std::uint8_t>(body, static_cast<std::size_t>(len)));
  if (got != expect) {
    poison("frame checksum mismatch");
  }
  std::vector<std::uint8_t> payload(body, tail);
  pos_ += total;
  return payload;
}

}  // namespace hpd::wire
