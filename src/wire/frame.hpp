// Framed byte-stream layer for the live transport.
//
// wire/codec turns one protocol message into bytes; a byte *stream* (TCP /
// Unix-domain socket) additionally needs message boundaries and corruption
// detection. A frame is:
//
//   varint payload_len   (unsigned LEB128, 1..5 bytes; len <= kMaxFramePayload)
//   payload              (payload_len bytes)
//   crc32c               (4 bytes, little-endian, CRC-32C/Castagnoli of the
//                         payload bytes only)
//
// FrameWriter appends frames to a byte buffer; FrameReader consumes an
// arbitrarily-chunked stream (frames may arrive truncated, concatenated, or
// split at any byte) and yields whole payloads. Any corruption — a CRC
// mismatch, an over-long or over-sized length prefix — throws FrameError:
// a byte stream that lost sync cannot be trusted again, so the owner must
// drop the connection.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

namespace hpd::wire {

class FrameError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Hard upper bound on a frame payload (16 MiB). Far above any protocol
/// message; its real job is to reject garbage length prefixes early.
inline constexpr std::size_t kMaxFramePayload = std::size_t{1} << 24;

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41 reflected), the checksum used
/// by iSCSI and ext4. Software table implementation; `seed` allows chaining.
std::uint32_t crc32c(std::span<const std::uint8_t> bytes,
                     std::uint32_t seed = 0);

/// Append one frame holding `payload` to `out`.
void append_frame(std::vector<std::uint8_t>& out,
                  std::span<const std::uint8_t> payload);

/// Convenience: one frame as a fresh buffer.
std::vector<std::uint8_t> frame(std::span<const std::uint8_t> payload);

/// Incremental decoder: feed() raw stream chunks in arrival order, then
/// call next() until it returns nullopt (= the buffered bytes hold no
/// complete frame yet). Throws FrameError on corruption, and the reader is
/// *poisoned* afterwards: a stream that lost sync cannot be trusted again
/// (there is no way to find the next frame boundary), so every later feed()
/// or next() also throws. The only recovery is a fresh connection with a
/// fresh reader — which is exactly what rt::LiveTransport does.
class FrameReader {
 public:
  /// Append a chunk of the stream.
  void feed(std::span<const std::uint8_t> bytes);

  /// Extract the next complete payload, if any.
  std::optional<std::vector<std::uint8_t>> next();

  /// Bytes buffered but not yet returned (diagnostics / tests).
  std::size_t buffered() const { return buf_.size() - pos_; }

  /// True once corruption has been seen; the reader refuses further use.
  bool poisoned() const { return poisoned_; }

 private:
  [[noreturn]] void poison(const char* what);

  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  ///< consumed prefix of buf_
  bool poisoned_ = false;
};

}  // namespace hpd::wire
