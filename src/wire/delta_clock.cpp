#include "wire/delta_clock.hpp"

#include "common/assert.hpp"

namespace hpd::wire {

namespace {
constexpr std::uint8_t kFull = 0;
constexpr std::uint8_t kDelta = 1;
}  // namespace

DeltaClockEncoder::DeltaClockEncoder(std::size_t n, std::size_t resync_every)
    : last_(n), resync_every_(resync_every) {}

std::vector<std::uint8_t> DeltaClockEncoder::encode(const VectorClock& vc) {
  HPD_REQUIRE(vc.size() == last_.size(), "DeltaClockEncoder: size mismatch");
  Encoder e;
  const bool resync =
      !have_last_ ||
      (resync_every_ != 0 && since_full_ + 1 >= resync_every_);
  if (resync) {
    e.put_u8(kFull);
    e.put_clock(vc);
    since_full_ = 0;
    ++full_sent_;
  } else {
    e.put_u8(kDelta);
    std::vector<std::pair<std::size_t, ClockValue>> changes;
    for (std::size_t i = 0; i < vc.size(); ++i) {
      HPD_REQUIRE(vc[i] >= last_[i],
                  "DeltaClockEncoder: clock went backwards");
      if (vc[i] != last_[i]) {
        changes.emplace_back(i, vc[i]);
      }
    }
    e.put_varint(changes.size());
    std::size_t prev = 0;
    bool first = true;
    for (const auto& [index, value] : changes) {
      e.put_varint(first ? index + 1 : index - prev);
      e.put_varint(value);
      prev = index;
      first = false;
    }
    ++since_full_;
  }
  last_ = vc;
  have_last_ = true;
  auto bytes = e.take();
  bytes_emitted_ += bytes.size();
  return bytes;
}

DeltaClockDecoder::DeltaClockDecoder(std::size_t n) : last_(n) {}

VectorClock DeltaClockDecoder::decode(std::span<const std::uint8_t> bytes) {
  Decoder d(bytes);
  const std::uint8_t kind = d.get_u8();
  if (kind == kFull) {
    VectorClock vc = d.get_clock();
    if (vc.size() != last_.size()) {
      throw DecodeError("delta-clock: full clock size mismatch");
    }
    if (!d.exhausted()) {
      throw DecodeError("delta-clock: trailing bytes");
    }
    last_ = vc;
    have_last_ = true;
    return vc;
  }
  if (kind != kDelta) {
    throw DecodeError("delta-clock: unknown kind");
  }
  if (!have_last_) {
    throw DecodeError("delta-clock: delta before any full clock");
  }
  const std::uint64_t k = d.get_varint();
  if (k > last_.size()) {
    throw DecodeError("delta-clock: too many changes");
  }
  VectorClock vc = last_;
  std::size_t index = 0;
  bool first = true;
  for (std::uint64_t c = 0; c < k; ++c) {
    const std::uint64_t gap = d.get_varint();
    if (first) {
      if (gap == 0) {
        throw DecodeError("delta-clock: bad first index gap");
      }
      index = static_cast<std::size_t>(gap - 1);
      first = false;
    } else {
      if (gap == 0) {
        throw DecodeError("delta-clock: non-increasing index");
      }
      index += static_cast<std::size_t>(gap);
    }
    if (index >= vc.size()) {
      throw DecodeError("delta-clock: index out of range");
    }
    const std::uint64_t value = d.get_varint();
    if (value > UINT32_MAX || value < vc[index]) {
      throw DecodeError("delta-clock: bad component value");
    }
    vc[index] = static_cast<ClockValue>(value);
  }
  if (!d.exhausted()) {
    throw DecodeError("delta-clock: trailing bytes");
  }
  last_ = vc;
  return vc;
}

}  // namespace hpd::wire
