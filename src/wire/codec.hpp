// Binary wire codec for the hpd protocol.
//
// The simulator passes typed payloads in-memory; a real deployment needs
// bytes. This codec defines a compact, portable format for every protocol
// payload — vector clocks are LEB128-varint encoded (timestamps are mostly
// small and differ little across components, so this typically beats the
// 4·n raw encoding by 2–4×) — and the decoder is hardened against
// truncated or corrupt input (it throws DecodeError rather than reading out
// of bounds).
//
// Format conventions:
//   varint  — unsigned LEB128, 1–10 bytes
//   clock   — varint n, then n varint components
//   interval— clock lo, clock hi, varint origin+1, varint seq,
//             varint weight, u8 flags (bit 0 = aggregated, bit 1 =
//             provenance follows: varint count, then per base interval
//             varint origin+1 + varint seq). Provenance is attached only
//             in track_provenance runs; production intervals stay compact.
//   every message body starts with u8 type tag (proto::MsgType)
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "interval/interval.hpp"
#include "proto/messages.hpp"
#include "vc/vector_clock.hpp"

namespace hpd::wire {

class DecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Append-only byte sink.
class Encoder {
 public:
  void put_u8(std::uint8_t v) { bytes_.push_back(v); }
  void put_varint(std::uint64_t v);
  void put_clock(const VectorClock& vc);
  void put_interval(const Interval& x);

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked byte source.
class Decoder {
 public:
  explicit Decoder(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t get_u8();
  std::uint64_t get_varint();
  VectorClock get_clock();
  Interval get_interval();

  bool exhausted() const { return pos_ == bytes_.size(); }
  std::size_t remaining() const { return bytes_.size() - pos_; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

// ---- Whole-message encode / decode -----------------------------------------

/// A decoded protocol message: the tag plus exactly one engaged payload.
struct DecodedMessage {
  int type = 0;
  proto::AppPayload app;
  proto::ReportPayload report;
  proto::HeartbeatPayload heartbeat;
  proto::ProbeAckPayload probe_ack;
  proto::AttachReqPayload attach_req;
  proto::AttachAckPayload attach_ack;
  proto::DelegatePayload delegate;
  proto::DelegateFailPayload delegate_fail;
  proto::FlipPayload flip;
  proto::FlipAckPayload flip_ack;
};

std::vector<std::uint8_t> encode(const proto::AppPayload& p);
/// Reports appear under two tags (kReportHier / kReportCentral).
std::vector<std::uint8_t> encode_report(const proto::ReportPayload& p,
                                        int type);
std::vector<std::uint8_t> encode(const proto::HeartbeatPayload& p);
std::vector<std::uint8_t> encode(const proto::ProbePayload& p);
std::vector<std::uint8_t> encode(const proto::ProbeAckPayload& p);
std::vector<std::uint8_t> encode(const proto::AttachReqPayload& p);
std::vector<std::uint8_t> encode(const proto::AttachAckPayload& p);
std::vector<std::uint8_t> encode(const proto::DelegatePayload& p);
std::vector<std::uint8_t> encode(const proto::DelegateFailPayload& p);
std::vector<std::uint8_t> encode(const proto::FlipPayload& p);
std::vector<std::uint8_t> encode(const proto::FlipAckPayload& p);
std::vector<std::uint8_t> encode(const proto::FlipGoPayload& p);
std::vector<std::uint8_t> encode(const proto::DisownPayload& p);

/// Decode any protocol message (dispatches on the leading tag byte).
/// Throws DecodeError on truncation, trailing garbage, or unknown tags.
DecodedMessage decode(std::span<const std::uint8_t> bytes);

}  // namespace hpd::wire
