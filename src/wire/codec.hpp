// Binary wire codec for the hpd protocol.
//
// The simulator passes typed payloads in-memory; a real deployment needs
// bytes. This codec defines a compact, portable format for every protocol
// payload — vector clocks are LEB128-varint encoded (timestamps are mostly
// small and differ little across components, so this typically beats the
// 4·n raw encoding by 2–4×) — and the decoder is hardened against
// truncated or corrupt input (it throws DecodeError rather than reading out
// of bounds).
//
// Format conventions:
//   varint  — unsigned LEB128, 1–10 bytes
//   zigzag  — signed value mapped to varint: (v << 1) ^ (v >> 63)
//   clock   — varint n, then n varint components
//   interval (v1, the default)
//           — clock lo, clock hi, varint origin+1, varint seq,
//             varint weight, u8 flags (bit 0 = aggregated, bit 1 =
//             provenance follows: varint count, then per base interval
//             varint origin+1 + varint seq). Provenance is attached only
//             in track_provenance runs; production intervals stay compact.
//   interval (v2 "delta", opt-in via WireFormat::kDelta)
//           — varint 0 (sentinel: a v1 lo-size of 0 forces the next byte
//             to be 0x00, so 0x02 here is unreachable in valid v1 bytes),
//             u8 0x02 (version), varint n, n varint lo components,
//             n zigzag (hi[i] − lo[i]) deltas, then the same tail as v1
//             (origin+1, seq, weight, flags, provenance). A slowly
//             advancing hi rides almost free on lo.
//   interval batch (always delta)
//           — u8 0x02 (version), varint count; first interval carries
//             varint n + absolute lo; each later one encodes lo as zigzag
//             deltas against its predecessor's lo (clock size is shared
//             across the batch); every hi is zigzag-delta against its own
//             lo; each interval ends with the v1 tail. Consecutive
//             intervals from one queue differ by a few events, so the
//             whole chain stays near one byte per component.
//   every message body starts with u8 type tag (proto::MsgType)
//
// Decoders accept both interval formats regardless of how the encoder was
// configured — old bytes stay decodable forever.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "interval/interval.hpp"
#include "proto/messages.hpp"
#include "vc/vector_clock.hpp"

namespace hpd::wire {

class DecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Which interval layout an Encoder emits. Decoders always accept both.
enum class WireFormat : std::uint8_t {
  kV1 = 0,     ///< absolute clocks (the original layout)
  kDelta = 1,  ///< v2: hi encoded as zigzag deltas against lo
};

/// Append-only byte sink.
class Encoder {
 public:
  explicit Encoder(WireFormat format = WireFormat::kV1) : format_(format) {}

  void put_u8(std::uint8_t v) { bytes_.push_back(v); }
  void put_varint(std::uint64_t v);
  void put_zigzag(std::int64_t v);
  void put_clock(const VectorClock& vc);
  /// Encode one interval in the encoder's configured format.
  void put_interval(const Interval& x);
  /// Encode a delta chain: each interval's lo rides on its predecessor's.
  /// All intervals must share one clock size (a queue stream always does).
  void put_interval_batch(std::span<const Interval> xs);

  WireFormat format() const { return format_; }
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  void put_interval_v1(const Interval& x);
  void put_interval_delta(const Interval& x);
  /// origin / seq / weight / flags / provenance — shared by every layout.
  void put_interval_tail(const Interval& x);

  std::vector<std::uint8_t> bytes_;
  WireFormat format_;
};

/// Bounds-checked byte source.
class Decoder {
 public:
  explicit Decoder(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t get_u8();
  std::uint64_t get_varint();
  std::int64_t get_zigzag();
  VectorClock get_clock();
  /// Decode an interval in either layout (v1 absolute or v2 delta).
  Interval get_interval();
  /// Decode a delta chain written by put_interval_batch.
  std::vector<Interval> get_interval_batch();

  bool exhausted() const { return pos_ == bytes_.size(); }
  std::size_t remaining() const { return bytes_.size() - pos_; }

 private:
  VectorClock get_clock_body(std::uint64_t n);
  Interval get_interval_delta_body();
  void get_interval_tail(Interval& x);

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

// ---- Whole-message encode / decode -----------------------------------------

/// A decoded protocol message: the tag plus exactly one engaged payload.
struct DecodedMessage {
  int type = 0;
  proto::AppPayload app;
  proto::ReportPayload report;
  proto::HeartbeatPayload heartbeat;
  proto::ProbeAckPayload probe_ack;
  proto::AttachReqPayload attach_req;
  proto::AttachAckPayload attach_ack;
  proto::DelegatePayload delegate;
  proto::DelegateFailPayload delegate_fail;
  proto::FlipPayload flip;
  proto::FlipAckPayload flip_ack;
};

std::vector<std::uint8_t> encode(const proto::AppPayload& p);
/// Reports appear under two tags (kReportHier / kReportCentral). `format`
/// selects the interval layout; any decoder accepts either.
std::vector<std::uint8_t> encode_report(const proto::ReportPayload& p,
                                        int type,
                                        WireFormat format = WireFormat::kV1);
std::vector<std::uint8_t> encode(const proto::HeartbeatPayload& p);
std::vector<std::uint8_t> encode(const proto::ProbePayload& p);
std::vector<std::uint8_t> encode(const proto::ProbeAckPayload& p);
std::vector<std::uint8_t> encode(const proto::AttachReqPayload& p);
std::vector<std::uint8_t> encode(const proto::AttachAckPayload& p);
std::vector<std::uint8_t> encode(const proto::DelegatePayload& p);
std::vector<std::uint8_t> encode(const proto::DelegateFailPayload& p);
std::vector<std::uint8_t> encode(const proto::FlipPayload& p);
std::vector<std::uint8_t> encode(const proto::FlipAckPayload& p);
std::vector<std::uint8_t> encode(const proto::FlipGoPayload& p);
std::vector<std::uint8_t> encode(const proto::DisownPayload& p);

/// Decode any protocol message (dispatches on the leading tag byte).
/// Throws DecodeError on truncation, trailing garbage, or unknown tags.
DecodedMessage decode(std::span<const std::uint8_t> bytes);

// ---- Bulk interval transfer -------------------------------------------------

/// Standalone delta-chained blob for bulk interval transfer (state
/// snapshots, recorded streams). Not a protocol message: no type tag.
/// All intervals must share one clock size.
std::vector<std::uint8_t> encode_interval_batch(std::span<const Interval> xs);
/// Inverse of encode_interval_batch. Throws DecodeError on malformed input.
std::vector<Interval> decode_interval_batch(
    std::span<const std::uint8_t> bytes);

}  // namespace hpd::wire
