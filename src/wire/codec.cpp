#include "wire/codec.hpp"

#include <memory>

#include "common/assert.hpp"

namespace hpd::wire {

namespace {

/// Shared helper: encode a (possibly absent) ProcessId as varint(id + 1).
std::uint64_t pid_wire(ProcessId id) {
  return static_cast<std::uint64_t>(static_cast<std::int64_t>(id) + 1);
}

ProcessId pid_unwire(std::uint64_t v, const char* what) {
  if (v > static_cast<std::uint64_t>(INT32_MAX) + 1) {
    throw DecodeError(std::string("process id out of range in ") + what);
  }
  return static_cast<ProcessId>(static_cast<std::int64_t>(v) - 1);
}

void put_path(Encoder& e, const std::vector<ProcessId>& path) {
  e.put_varint(path.size());
  for (const ProcessId p : path) {
    e.put_varint(pid_wire(p));
  }
}

std::vector<ProcessId> get_path(Decoder& d) {
  const std::uint64_t n = d.get_varint();
  if (n > d.remaining()) {  // each entry takes >= 1 byte
    throw DecodeError("path length exceeds message size");
  }
  std::vector<ProcessId> path;
  path.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    path.push_back(pid_unwire(d.get_varint(), "path"));
  }
  return path;
}

void require_exhausted(const Decoder& d) {
  if (!d.exhausted()) {
    throw DecodeError("trailing bytes after message");
  }
}

}  // namespace

// ---- Encoder ----------------------------------------------------------------

void Encoder::put_varint(std::uint64_t v) {
  while (v >= 0x80) {
    bytes_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  bytes_.push_back(static_cast<std::uint8_t>(v));
}

void Encoder::put_clock(const VectorClock& vc) {
  put_varint(vc.size());
  for (std::size_t i = 0; i < vc.size(); ++i) {
    put_varint(vc[i]);
  }
}

void Encoder::put_interval(const Interval& x) {
  put_clock(x.lo);
  put_clock(x.hi);
  put_varint(pid_wire(x.origin));
  put_varint(x.seq);
  put_varint(x.weight);
  // Provenance travels (flattened to its base set) only when attached, i.e.
  // in track_provenance runs — the live differential oracle needs the base
  // sets to survive the socket. Untracked runs keep the compact format.
  const auto bases = base_intervals(x);
  std::uint8_t flags = x.aggregated ? 1 : 0;
  if (!bases.empty()) {
    flags |= 2;
  }
  put_u8(flags);
  if (!bases.empty()) {
    put_varint(bases.size());
    for (const auto& [origin, seq] : bases) {
      put_varint(pid_wire(origin));
      put_varint(seq);
    }
  }
}

// ---- Decoder ----------------------------------------------------------------

std::uint8_t Decoder::get_u8() {
  if (pos_ >= bytes_.size()) {
    throw DecodeError("truncated message (u8)");
  }
  return bytes_[pos_++];
}

std::uint64_t Decoder::get_varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (pos_ >= bytes_.size()) {
      throw DecodeError("truncated message (varint)");
    }
    const std::uint8_t b = bytes_[pos_++];
    if (shift >= 63 && (b & 0x7f) > 1) {
      throw DecodeError("varint overflow");
    }
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      return v;
    }
    shift += 7;
    if (shift > 63) {
      throw DecodeError("varint too long");
    }
  }
}

VectorClock Decoder::get_clock() {
  const std::uint64_t n = get_varint();
  if (n > remaining()) {  // each component takes >= 1 byte
    throw DecodeError("clock size exceeds message size");
  }
  VectorClock vc(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t c = get_varint();
    if (c > UINT32_MAX) {
      throw DecodeError("clock component out of range");
    }
    vc[i] = static_cast<ClockValue>(c);
  }
  return vc;
}

Interval Decoder::get_interval() {
  Interval x;
  x.lo = get_clock();
  x.hi = get_clock();
  if (x.lo.size() != x.hi.size()) {
    throw DecodeError("interval bounds size mismatch");
  }
  x.origin = pid_unwire(get_varint(), "interval origin");
  x.seq = get_varint();
  const std::uint64_t w = get_varint();
  if (w == 0 || w > UINT32_MAX) {
    throw DecodeError("interval weight out of range");
  }
  x.weight = static_cast<std::uint32_t>(w);
  const std::uint8_t flags = get_u8();
  if ((flags & ~std::uint8_t{0x03}) != 0) {
    throw DecodeError("interval flags unknown");
  }
  x.aggregated = (flags & 1) != 0;
  if ((flags & 2) != 0) {
    const std::uint64_t k = get_varint();
    if (k == 0 || k > remaining()) {  // each base pair takes >= 2 bytes
      throw DecodeError("interval provenance size");
    }
    auto prov = std::make_shared<Provenance>();
    prov->origin = x.origin;
    prov->seq = x.seq;
    prov->parts.reserve(static_cast<std::size_t>(k));
    for (std::uint64_t i = 0; i < k; ++i) {
      auto base = std::make_shared<Provenance>();
      base->origin = pid_unwire(get_varint(), "interval provenance");
      base->seq = get_varint();
      prov->parts.push_back(std::move(base));
    }
    x.provenance = std::move(prov);
  }
  return x;
}

// ---- Message encoders --------------------------------------------------------

std::vector<std::uint8_t> encode(const proto::AppPayload& p) {
  Encoder e;
  e.put_u8(proto::kApp);
  e.put_varint(static_cast<std::uint64_t>(p.subtype));
  e.put_varint(p.round);
  e.put_clock(p.stamp);
  return e.take();
}

std::vector<std::uint8_t> encode_report(const proto::ReportPayload& p,
                                        int type) {
  HPD_REQUIRE(type == proto::kReportHier || type == proto::kReportCentral,
              "encode_report: not a report tag");
  Encoder e;
  e.put_u8(static_cast<std::uint8_t>(type));
  e.put_interval(p.interval);
  return e.take();
}

std::vector<std::uint8_t> encode(const proto::HeartbeatPayload& p) {
  Encoder e;
  e.put_u8(proto::kHeartbeat);
  e.put_u8(p.attached ? 1 : 0);
  put_path(e, p.root_path);
  return e.take();
}

std::vector<std::uint8_t> encode(const proto::ProbePayload&) {
  Encoder e;
  e.put_u8(proto::kProbe);
  return e.take();
}

std::vector<std::uint8_t> encode(const proto::ProbeAckPayload& p) {
  Encoder e;
  e.put_u8(proto::kProbeAck);
  e.put_u8(p.attached ? 1 : 0);
  put_path(e, p.root_path);
  return e.take();
}

std::vector<std::uint8_t> encode(const proto::AttachReqPayload& p) {
  Encoder e;
  e.put_u8(proto::kAttachReq);
  e.put_varint(p.next_report_seq);
  return e.take();
}

std::vector<std::uint8_t> encode(const proto::AttachAckPayload& p) {
  Encoder e;
  e.put_u8(proto::kAttachAck);
  e.put_u8(p.accepted ? 1 : 0);
  return e.take();
}

std::vector<std::uint8_t> encode(const proto::DelegatePayload& p) {
  Encoder e;
  e.put_u8(proto::kDelegate);
  e.put_varint(pid_wire(p.orphan));
  return e.take();
}

std::vector<std::uint8_t> encode(const proto::DelegateFailPayload& p) {
  Encoder e;
  e.put_u8(proto::kDelegateFail);
  e.put_varint(pid_wire(p.orphan));
  return e.take();
}

std::vector<std::uint8_t> encode(const proto::FlipPayload& p) {
  Encoder e;
  e.put_u8(proto::kFlip);
  e.put_varint(pid_wire(p.orphan));
  return e.take();
}

std::vector<std::uint8_t> encode(const proto::FlipAckPayload& p) {
  Encoder e;
  e.put_u8(proto::kFlipAck);
  e.put_varint(p.first_seq);
  return e.take();
}

std::vector<std::uint8_t> encode(const proto::FlipGoPayload&) {
  Encoder e;
  e.put_u8(proto::kFlipGo);
  return e.take();
}

std::vector<std::uint8_t> encode(const proto::DisownPayload&) {
  Encoder e;
  e.put_u8(proto::kDisown);
  return e.take();
}

// ---- Message decoder ----------------------------------------------------------

DecodedMessage decode(std::span<const std::uint8_t> bytes) {
  Decoder d(bytes);
  DecodedMessage out;
  out.type = d.get_u8();
  switch (out.type) {
    case proto::kApp: {
      const std::uint64_t subtype = d.get_varint();
      if (subtype > INT32_MAX) {
        throw DecodeError("app subtype out of range");
      }
      out.app.subtype = static_cast<int>(subtype);
      out.app.round = d.get_varint();
      out.app.stamp = d.get_clock();
      break;
    }
    case proto::kReportHier:
    case proto::kReportCentral:
      out.report.interval = d.get_interval();
      break;
    case proto::kHeartbeat:
      out.heartbeat.attached = d.get_u8() != 0;
      out.heartbeat.root_path = get_path(d);
      break;
    case proto::kProbe:
      break;
    case proto::kProbeAck:
      out.probe_ack.attached = d.get_u8() != 0;
      out.probe_ack.root_path = get_path(d);
      break;
    case proto::kAttachReq:
      out.attach_req.next_report_seq = d.get_varint();
      break;
    case proto::kAttachAck:
      out.attach_ack.accepted = d.get_u8() != 0;
      break;
    case proto::kDelegate:
      out.delegate.orphan = pid_unwire(d.get_varint(), "delegate");
      break;
    case proto::kDelegateFail:
      out.delegate_fail.orphan = pid_unwire(d.get_varint(), "delegate-fail");
      break;
    case proto::kFlip:
      out.flip.orphan = pid_unwire(d.get_varint(), "flip");
      break;
    case proto::kFlipAck:
      out.flip_ack.first_seq = d.get_varint();
      break;
    case proto::kFlipGo:
    case proto::kDisown:
      break;
    default:
      throw DecodeError("unknown message tag");
  }
  require_exhausted(d);
  return out;
}

}  // namespace hpd::wire
