#include "wire/codec.hpp"

#include <memory>

#include "common/assert.hpp"

namespace hpd::wire {

namespace {

/// Shared helper: encode a (possibly absent) ProcessId as varint(id + 1).
std::uint64_t pid_wire(ProcessId id) {
  return static_cast<std::uint64_t>(static_cast<std::int64_t>(id) + 1);
}

ProcessId pid_unwire(std::uint64_t v, const char* what) {
  if (v > static_cast<std::uint64_t>(INT32_MAX) + 1) {
    throw DecodeError(std::string("process id out of range in ") + what);
  }
  return static_cast<ProcessId>(static_cast<std::int64_t>(v) - 1);
}

void put_path(Encoder& e, const std::vector<ProcessId>& path) {
  e.put_varint(path.size());
  for (const ProcessId p : path) {
    e.put_varint(pid_wire(p));
  }
}

std::vector<ProcessId> get_path(Decoder& d) {
  const std::uint64_t n = d.get_varint();
  if (n > d.remaining()) {  // each entry takes >= 1 byte
    throw DecodeError("path length exceeds message size");
  }
  std::vector<ProcessId> path;
  path.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    path.push_back(pid_unwire(d.get_varint(), "path"));
  }
  return path;
}

void require_exhausted(const Decoder& d) {
  if (!d.exhausted()) {
    throw DecodeError("trailing bytes after message");
  }
}

/// Version byte of the delta interval / batch layouts. Chosen so the
/// standalone v2 marker (varint 0, then this byte) can never appear in
/// valid v1 bytes: a v1 interval starting with lo-size 0 must continue
/// with hi-size 0x00 or the v1 decoder rejects it as a bounds mismatch.
constexpr std::uint8_t kIntervalVersionDelta = 0x02;

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

}  // namespace

// ---- Encoder ----------------------------------------------------------------

void Encoder::put_varint(std::uint64_t v) {
  while (v >= 0x80) {
    bytes_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  bytes_.push_back(static_cast<std::uint8_t>(v));
}

void Encoder::put_zigzag(std::int64_t v) { put_varint(zigzag(v)); }

void Encoder::put_clock(const VectorClock& vc) {
  put_varint(vc.size());
  const ClockValue* p = vc.data();
  for (std::size_t i = 0; i < vc.size(); ++i) {
    put_varint(p[i]);
  }
}

void Encoder::put_interval(const Interval& x) {
  if (format_ == WireFormat::kDelta) {
    put_interval_delta(x);
  } else {
    put_interval_v1(x);
  }
}

void Encoder::put_interval_v1(const Interval& x) {
  put_clock(x.lo);
  put_clock(x.hi);
  put_interval_tail(x);
}

void Encoder::put_interval_delta(const Interval& x) {
  put_varint(0);  // sentinel, see kIntervalVersionDelta
  put_u8(kIntervalVersionDelta);
  const std::size_t n = x.lo.size();
  put_varint(n);
  const ClockValue* lo = x.lo.data();
  const ClockValue* hi = x.hi.data();
  for (std::size_t i = 0; i < n; ++i) {
    put_varint(lo[i]);
  }
  // hi rides on lo: within an interval the clock advances by few events,
  // so these deltas are tiny even when the absolute stamps are large.
  for (std::size_t i = 0; i < n; ++i) {
    put_zigzag(static_cast<std::int64_t>(hi[i]) -
               static_cast<std::int64_t>(lo[i]));
  }
  put_interval_tail(x);
}

void Encoder::put_interval_tail(const Interval& x) {
  put_varint(pid_wire(x.origin));
  put_varint(x.seq);
  put_varint(x.weight);
  // Provenance travels (flattened to its base set) only when attached, i.e.
  // in track_provenance runs — the live differential oracle needs the base
  // sets to survive the socket. Untracked runs keep the compact format.
  const auto bases = base_intervals(x);
  std::uint8_t flags = x.aggregated ? 1 : 0;
  if (!bases.empty()) {
    flags |= 2;
  }
  put_u8(flags);
  if (!bases.empty()) {
    put_varint(bases.size());
    for (const auto& [origin, seq] : bases) {
      put_varint(pid_wire(origin));
      put_varint(seq);
    }
  }
}

void Encoder::put_interval_batch(std::span<const Interval> xs) {
  put_u8(kIntervalVersionDelta);
  put_varint(xs.size());
  for (std::size_t k = 0; k < xs.size(); ++k) {
    const Interval& x = xs[k];
    HPD_REQUIRE(x.lo.size() == x.hi.size(),
                "put_interval_batch: bounds size mismatch");
    const std::size_t n = x.lo.size();
    const ClockValue* lo = x.lo.data();
    const ClockValue* hi = x.hi.data();
    if (k == 0) {
      put_varint(n);
      for (std::size_t i = 0; i < n; ++i) {
        put_varint(lo[i]);
      }
    } else {
      HPD_REQUIRE(n == xs[k - 1].lo.size(),
                  "put_interval_batch: clock sizes must match across batch");
      const ClockValue* prev = xs[k - 1].lo.data();
      for (std::size_t i = 0; i < n; ++i) {
        put_zigzag(static_cast<std::int64_t>(lo[i]) -
                   static_cast<std::int64_t>(prev[i]));
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      put_zigzag(static_cast<std::int64_t>(hi[i]) -
                 static_cast<std::int64_t>(lo[i]));
    }
    put_interval_tail(x);
  }
}

// ---- Decoder ----------------------------------------------------------------

std::uint8_t Decoder::get_u8() {
  if (pos_ >= bytes_.size()) {
    throw DecodeError("truncated message (u8)");
  }
  return bytes_[pos_++];
}

std::uint64_t Decoder::get_varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (pos_ >= bytes_.size()) {
      throw DecodeError("truncated message (varint)");
    }
    const std::uint8_t b = bytes_[pos_++];
    if (shift >= 63 && (b & 0x7f) > 1) {
      throw DecodeError("varint overflow");
    }
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      return v;
    }
    shift += 7;
    if (shift > 63) {
      throw DecodeError("varint too long");
    }
  }
}

std::int64_t Decoder::get_zigzag() { return unzigzag(get_varint()); }

VectorClock Decoder::get_clock_body(std::uint64_t n) {
  if (n > remaining()) {  // each component takes >= 1 byte
    throw DecodeError("clock size exceeds message size");
  }
  VectorClock vc(static_cast<std::size_t>(n));
  ClockValue* p = vc.data();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t c = get_varint();
    if (c > UINT32_MAX) {
      throw DecodeError("clock component out of range");
    }
    p[i] = static_cast<ClockValue>(c);
  }
  return vc;
}

VectorClock Decoder::get_clock() { return get_clock_body(get_varint()); }

namespace {

/// Apply a zigzag delta to a base component, range-checked.
ClockValue apply_delta(ClockValue base, std::int64_t delta, const char* what) {
  if (delta > static_cast<std::int64_t>(UINT32_MAX) ||
      delta < -static_cast<std::int64_t>(UINT32_MAX)) {
    throw DecodeError(std::string(what) + " delta out of range");
  }
  const std::int64_t v = static_cast<std::int64_t>(base) + delta;
  if (v < 0 || v > static_cast<std::int64_t>(UINT32_MAX)) {
    throw DecodeError(std::string(what) + " component out of range");
  }
  return static_cast<ClockValue>(v);
}

}  // namespace

Interval Decoder::get_interval() {
  // Discriminate the layouts: v1 leads with lo's size, and a v1 lo-size of
  // 0 can only be followed by hi-size 0x00 — so (varint 0, 0x02) uniquely
  // marks the delta layout.
  const std::uint64_t first = get_varint();
  if (first == 0) {
    const std::uint8_t second = get_u8();
    if (second == kIntervalVersionDelta) {
      return get_interval_delta_body();
    }
    if (second != 0) {
      throw DecodeError("interval bounds size mismatch");
    }
    Interval x;  // v1 with empty bounds: the 0x00 was hi's size
    get_interval_tail(x);
    return x;
  }
  Interval x;
  x.lo = get_clock_body(first);
  x.hi = get_clock();
  if (x.lo.size() != x.hi.size()) {
    throw DecodeError("interval bounds size mismatch");
  }
  get_interval_tail(x);
  return x;
}

Interval Decoder::get_interval_delta_body() {
  const std::uint64_t n = get_varint();
  if (n > remaining()) {
    throw DecodeError("clock size exceeds message size");
  }
  Interval x;
  x.lo = get_clock_body(n);
  x.hi = VectorClock(static_cast<std::size_t>(n));
  const ClockValue* lo = x.lo.data();
  ClockValue* hi = x.hi.data();
  for (std::size_t i = 0; i < n; ++i) {
    hi[i] = apply_delta(lo[i], get_zigzag(), "interval hi");
  }
  get_interval_tail(x);
  return x;
}

void Decoder::get_interval_tail(Interval& x) {
  x.origin = pid_unwire(get_varint(), "interval origin");
  x.seq = get_varint();
  const std::uint64_t w = get_varint();
  if (w == 0 || w > UINT32_MAX) {
    throw DecodeError("interval weight out of range");
  }
  x.weight = static_cast<std::uint32_t>(w);
  const std::uint8_t flags = get_u8();
  if ((flags & ~std::uint8_t{0x03}) != 0) {
    throw DecodeError("interval flags unknown");
  }
  x.aggregated = (flags & 1) != 0;
  if ((flags & 2) != 0) {
    const std::uint64_t k = get_varint();
    if (k == 0 || k > remaining()) {  // each base pair takes >= 2 bytes
      throw DecodeError("interval provenance size");
    }
    auto prov = std::make_shared<Provenance>();
    prov->origin = x.origin;
    prov->seq = x.seq;
    prov->parts.reserve(static_cast<std::size_t>(k));
    for (std::uint64_t i = 0; i < k; ++i) {
      auto base = std::make_shared<Provenance>();
      base->origin = pid_unwire(get_varint(), "interval provenance");
      base->seq = get_varint();
      prov->parts.push_back(std::move(base));
    }
    x.provenance = std::move(prov);
  }
}

std::vector<Interval> Decoder::get_interval_batch() {
  if (get_u8() != kIntervalVersionDelta) {
    throw DecodeError("interval batch version unknown");
  }
  const std::uint64_t count = get_varint();
  if (count > remaining()) {  // each interval takes >= 4 bytes
    throw DecodeError("interval batch count exceeds message size");
  }
  std::vector<Interval> out;
  out.reserve(static_cast<std::size_t>(count));
  std::uint64_t n = 0;
  for (std::uint64_t k = 0; k < count; ++k) {
    Interval x;
    if (k == 0) {
      n = get_varint();
      x.lo = get_clock_body(n);
    } else {
      x.lo = VectorClock(static_cast<std::size_t>(n));
      const ClockValue* prev = out.back().lo.data();
      ClockValue* lo = x.lo.data();
      for (std::size_t i = 0; i < n; ++i) {
        lo[i] = apply_delta(prev[i], get_zigzag(), "batch lo");
      }
    }
    x.hi = VectorClock(static_cast<std::size_t>(n));
    const ClockValue* lo = x.lo.data();
    ClockValue* hi = x.hi.data();
    for (std::size_t i = 0; i < n; ++i) {
      hi[i] = apply_delta(lo[i], get_zigzag(), "batch hi");
    }
    get_interval_tail(x);
    out.push_back(std::move(x));
  }
  return out;
}

// ---- Message encoders --------------------------------------------------------

std::vector<std::uint8_t> encode(const proto::AppPayload& p) {
  Encoder e;
  e.put_u8(proto::kApp);
  e.put_varint(static_cast<std::uint64_t>(p.subtype));
  e.put_varint(p.round);
  e.put_clock(p.stamp);
  return e.take();
}

std::vector<std::uint8_t> encode_report(const proto::ReportPayload& p,
                                        int type, WireFormat format) {
  HPD_REQUIRE(type == proto::kReportHier || type == proto::kReportCentral,
              "encode_report: not a report tag");
  Encoder e(format);
  e.put_u8(static_cast<std::uint8_t>(type));
  e.put_interval(p.interval);
  return e.take();
}

std::vector<std::uint8_t> encode(const proto::HeartbeatPayload& p) {
  Encoder e;
  e.put_u8(proto::kHeartbeat);
  e.put_u8(p.attached ? 1 : 0);
  put_path(e, p.root_path);
  return e.take();
}

std::vector<std::uint8_t> encode(const proto::ProbePayload&) {
  Encoder e;
  e.put_u8(proto::kProbe);
  return e.take();
}

std::vector<std::uint8_t> encode(const proto::ProbeAckPayload& p) {
  Encoder e;
  e.put_u8(proto::kProbeAck);
  e.put_u8(p.attached ? 1 : 0);
  put_path(e, p.root_path);
  return e.take();
}

std::vector<std::uint8_t> encode(const proto::AttachReqPayload& p) {
  Encoder e;
  e.put_u8(proto::kAttachReq);
  e.put_varint(p.next_report_seq);
  return e.take();
}

std::vector<std::uint8_t> encode(const proto::AttachAckPayload& p) {
  Encoder e;
  e.put_u8(proto::kAttachAck);
  e.put_u8(p.accepted ? 1 : 0);
  return e.take();
}

std::vector<std::uint8_t> encode(const proto::DelegatePayload& p) {
  Encoder e;
  e.put_u8(proto::kDelegate);
  e.put_varint(pid_wire(p.orphan));
  return e.take();
}

std::vector<std::uint8_t> encode(const proto::DelegateFailPayload& p) {
  Encoder e;
  e.put_u8(proto::kDelegateFail);
  e.put_varint(pid_wire(p.orphan));
  return e.take();
}

std::vector<std::uint8_t> encode(const proto::FlipPayload& p) {
  Encoder e;
  e.put_u8(proto::kFlip);
  e.put_varint(pid_wire(p.orphan));
  return e.take();
}

std::vector<std::uint8_t> encode(const proto::FlipAckPayload& p) {
  Encoder e;
  e.put_u8(proto::kFlipAck);
  e.put_varint(p.first_seq);
  return e.take();
}

std::vector<std::uint8_t> encode(const proto::FlipGoPayload&) {
  Encoder e;
  e.put_u8(proto::kFlipGo);
  return e.take();
}

std::vector<std::uint8_t> encode(const proto::DisownPayload&) {
  Encoder e;
  e.put_u8(proto::kDisown);
  return e.take();
}

// ---- Message decoder ----------------------------------------------------------

DecodedMessage decode(std::span<const std::uint8_t> bytes) {
  Decoder d(bytes);
  DecodedMessage out;
  out.type = d.get_u8();
  switch (out.type) {
    case proto::kApp: {
      const std::uint64_t subtype = d.get_varint();
      if (subtype > INT32_MAX) {
        throw DecodeError("app subtype out of range");
      }
      out.app.subtype = static_cast<int>(subtype);
      out.app.round = d.get_varint();
      out.app.stamp = d.get_clock();
      break;
    }
    case proto::kReportHier:
    case proto::kReportCentral:
      out.report.interval = d.get_interval();
      break;
    case proto::kHeartbeat:
      out.heartbeat.attached = d.get_u8() != 0;
      out.heartbeat.root_path = get_path(d);
      break;
    case proto::kProbe:
      break;
    case proto::kProbeAck:
      out.probe_ack.attached = d.get_u8() != 0;
      out.probe_ack.root_path = get_path(d);
      break;
    case proto::kAttachReq:
      out.attach_req.next_report_seq = d.get_varint();
      break;
    case proto::kAttachAck:
      out.attach_ack.accepted = d.get_u8() != 0;
      break;
    case proto::kDelegate:
      out.delegate.orphan = pid_unwire(d.get_varint(), "delegate");
      break;
    case proto::kDelegateFail:
      out.delegate_fail.orphan = pid_unwire(d.get_varint(), "delegate-fail");
      break;
    case proto::kFlip:
      out.flip.orphan = pid_unwire(d.get_varint(), "flip");
      break;
    case proto::kFlipAck:
      out.flip_ack.first_seq = d.get_varint();
      break;
    case proto::kFlipGo:
    case proto::kDisown:
      break;
    default:
      throw DecodeError("unknown message tag");
  }
  require_exhausted(d);
  return out;
}

// ---- Bulk interval transfer ---------------------------------------------------

std::vector<std::uint8_t> encode_interval_batch(std::span<const Interval> xs) {
  Encoder e(WireFormat::kDelta);
  e.put_interval_batch(xs);
  return e.take();
}

std::vector<Interval> decode_interval_batch(
    std::span<const std::uint8_t> bytes) {
  Decoder d(bytes);
  std::vector<Interval> out = d.get_interval_batch();
  require_exhausted(d);
  return out;
}

}  // namespace hpd::wire
