#include "ckpt/event_stream.hpp"

#include <cstring>

#include "ckpt/interval_codec.hpp"
#include "wire/codec.hpp"

namespace hpd::ckpt {

namespace {

constexpr char kStreamMagic[8] = {'H', 'P', 'D', 'E', 'V', 'T', 'S', '1'};

constexpr std::uint8_t kTagHeader = 0x00;
constexpr std::uint8_t kTagEvent = 0x01;
constexpr std::uint8_t kTagStreamEnd = 0xFF;

}  // namespace

// ---- Writer -----------------------------------------------------------------

EventStreamWriter::EventStreamWriter(const std::string& path,
                                     std::size_t num_processes)
    : out_(path, std::ios::binary | std::ios::trunc), path_(path) {
  if (!out_) {
    throw CkptError("ckpt: cannot create event stream " + path);
  }
  out_.write(kStreamMagic, sizeof(kStreamMagic));
  wire::Encoder e;
  e.put_u8(kTagHeader);
  e.put_varint(kStreamVersion);
  e.put_varint(num_processes);
  write_frame(e.take());
}

void EventStreamWriter::write_frame(const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> framed;
  wire::append_frame(framed, payload);
  out_.write(reinterpret_cast<const char*>(framed.data()),
             static_cast<std::streamsize>(framed.size()));
  if (!out_.flush()) {
    throw CkptError("ckpt: write to event stream " + path_ + " failed");
  }
}

void EventStreamWriter::append(const Interval& x) {
  wire::Encoder e;
  e.put_u8(kTagEvent);
  internal::put_interval_full(e, x);
  write_frame(e.take());
  events_ += 1;
}

void EventStreamWriter::finish() {
  if (finished_) {
    return;
  }
  wire::Encoder e;
  e.put_u8(kTagStreamEnd);
  write_frame(e.take());
  finished_ = true;
}

// ---- Reader -----------------------------------------------------------------

EventStreamReader::EventStreamReader(const std::string& path)
    : in_(path, std::ios::binary), path_(path) {
  if (!in_) {
    throw CkptError("ckpt: cannot open event stream " + path);
  }
}

bool EventStreamReader::fill() {
  // A tailing reader keeps hitting EOF; clear the state bits so later
  // appends by the producer become readable.
  in_.clear();
  char buf[1 << 16];
  in_.read(buf, sizeof(buf));
  const std::streamsize n = in_.gcount();
  if (n <= 0) {
    return false;
  }
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(buf);
  std::size_t off = 0;
  if (!checked_magic_) {
    // Accumulate the 8 magic bytes before any frame parsing: a tailing
    // reader can race the producer's very first write and see a prefix.
    while (magic_seen_ < sizeof(kStreamMagic) &&
           off < static_cast<std::size_t>(n)) {
      if (bytes[off] != static_cast<std::uint8_t>(kStreamMagic[magic_seen_])) {
        throw CkptError("ckpt: bad event stream magic in " + path_);
      }
      magic_seen_ += 1;
      off += 1;
    }
    if (magic_seen_ < sizeof(kStreamMagic)) {
      return false;  // still waiting for the rest of the magic
    }
    checked_magic_ = true;
  }
  frames_.feed({bytes + off, static_cast<std::size_t>(n) - off});
  return static_cast<std::size_t>(n) > off;
}

EventStreamReader::Status EventStreamReader::next(Interval& out) {
  if (saw_end_) {
    return Status::kEnd;
  }
  try {
    for (;;) {
      std::optional<std::vector<std::uint8_t>> payload = frames_.next();
      if (!payload.has_value()) {
        if (!fill()) {
          return Status::kWait;
        }
        continue;
      }
      if (payload->empty()) {
        throw CkptError("ckpt: empty event stream frame in " + path_);
      }
      const std::uint8_t tag = (*payload)[0];
      wire::Decoder d({payload->data() + 1, payload->size() - 1});
      if (!have_header_) {
        if (tag != kTagHeader) {
          throw CkptError("ckpt: event stream " + path_ +
                          " does not start with a HEADER frame");
        }
        const std::uint64_t version = d.get_varint();
        if (version != kStreamVersion) {
          throw CkptError("ckpt: unsupported event stream version " +
                          std::to_string(version));
        }
        num_processes_ = d.get_varint();
        if (!d.exhausted()) {
          throw CkptError("ckpt: trailing bytes in event stream HEADER");
        }
        have_header_ = true;
        continue;
      }
      switch (tag) {
        case kTagHeader:
          throw CkptError("ckpt: duplicate event stream HEADER in " + path_);
        case kTagEvent:
          out = internal::get_interval_full(d);
          if (!d.exhausted()) {
            throw CkptError("ckpt: trailing bytes in event frame");
          }
          events_ += 1;
          return Status::kEvent;
        case kTagStreamEnd:
          if (!d.exhausted()) {
            throw CkptError("ckpt: event stream END carries payload");
          }
          saw_end_ = true;
          return Status::kEnd;
        default:
          break;  // unknown tag: CRC-checked, skipped (forward compat)
      }
    }
  } catch (const wire::FrameError& err) {
    throw CkptError("ckpt: corrupt event stream " + path_ + ": " +
                    err.what());
  } catch (const wire::DecodeError& err) {
    throw CkptError("ckpt: malformed event stream frame in " + path_ + ": " +
                    err.what());
  }
}

}  // namespace hpd::ckpt
