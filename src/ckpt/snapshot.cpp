#include "ckpt/snapshot.hpp"

#include <utility>

#include "ckpt/interval_codec.hpp"
#include "wire/codec.hpp"

namespace hpd::ckpt {

namespace {

using internal::get_interval_full;
using internal::put_interval_full;

// Every section payload starts with a one-byte section format version so a
// section can evolve independently of the container.
constexpr std::uint8_t kSectionVersion = 1;

// ---- Primitives -------------------------------------------------------------

void put_pid(wire::Encoder& e, ProcessId id) {
  e.put_zigzag(id);  // kNoProcess (-1) must survive the round trip
}

ProcessId get_pid(wire::Decoder& d) {
  const std::int64_t v = d.get_zigzag();
  if (v < -1 || v > static_cast<std::int64_t>(INT32_MAX)) {
    throw CkptError("ckpt: process id out of range");
  }
  return static_cast<ProcessId>(v);
}

// ---- QueueEngine / ReorderBuffer -------------------------------------------

void put_queue_engine(wire::Encoder& e,
                      const detect::QueueEngine::Snapshot& s) {
  e.put_varint(s.queues.size());
  for (const auto& q : s.queues) {
    put_pid(e, q.key);
    e.put_varint(q.items.size());
    for (const Interval& x : q.items) {
      put_interval_full(e, x);
    }
    e.put_u8(q.has_pruned ? 1 : 0);
    if (q.has_pruned) {
      put_interval_full(e, q.last_pruned);
    }
  }
  e.put_u8(s.prune_mode);
  e.put_varint(s.capacity);
  e.put_varint(s.rejected);
  e.put_varint(s.comparisons);
  e.put_varint(s.stored_peak);
  e.put_varint(s.eliminated);
  e.put_varint(s.pruned);
  e.put_varint(s.solutions_found);
  e.put_varint(s.offered);
}

detect::QueueEngine::Snapshot get_queue_engine(wire::Decoder& d) {
  detect::QueueEngine::Snapshot s;
  const std::uint64_t nq = d.get_varint();
  for (std::uint64_t i = 0; i < nq; ++i) {
    detect::QueueEngine::Snapshot::Queue q;
    q.key = get_pid(d);
    const std::uint64_t ni = d.get_varint();
    for (std::uint64_t j = 0; j < ni; ++j) {
      q.items.push_back(get_interval_full(d));
    }
    q.has_pruned = d.get_u8() != 0;
    if (q.has_pruned) {
      q.last_pruned = get_interval_full(d);
    }
    s.queues.push_back(std::move(q));
  }
  s.prune_mode = d.get_u8();
  s.capacity = d.get_varint();
  s.rejected = d.get_varint();
  s.comparisons = d.get_varint();
  s.stored_peak = d.get_varint();
  s.eliminated = d.get_varint();
  s.pruned = d.get_varint();
  s.solutions_found = d.get_varint();
  s.offered = d.get_varint();
  return s;
}

void put_reorder(wire::Encoder& e, const detect::ReorderBuffer::Snapshot& s) {
  e.put_varint(s.streams.size());
  for (const auto& stream : s.streams) {
    put_pid(e, stream.origin);
    e.put_varint(stream.expected);
    e.put_varint(stream.parked.size());
    for (const auto& [seq, x] : stream.parked) {
      e.put_varint(seq);
      put_interval_full(e, x);
    }
  }
  e.put_varint(s.dropped_stale);
}

detect::ReorderBuffer::Snapshot get_reorder(wire::Decoder& d) {
  detect::ReorderBuffer::Snapshot s;
  const std::uint64_t ns = d.get_varint();
  for (std::uint64_t i = 0; i < ns; ++i) {
    detect::ReorderBuffer::Snapshot::Stream stream;
    stream.origin = get_pid(d);
    stream.expected = d.get_varint();
    const std::uint64_t np = d.get_varint();
    for (std::uint64_t j = 0; j < np; ++j) {
      const SeqNum seq = d.get_varint();
      stream.parked.emplace_back(seq, get_interval_full(d));
    }
    s.streams.push_back(std::move(stream));
  }
  s.dropped_stale = d.get_varint();
  return s;
}

void put_optional_interval(wire::Encoder& e,
                           const std::optional<Interval>& x) {
  e.put_u8(x.has_value() ? 1 : 0);
  if (x.has_value()) {
    put_interval_full(e, *x);
  }
}

std::optional<Interval> get_optional_interval(wire::Decoder& d) {
  if (d.get_u8() == 0) {
    return std::nullopt;
  }
  return get_interval_full(d);
}

// ---- Per-engine images ------------------------------------------------------

void put_central(wire::Encoder& e, const detect::CentralSink::Snapshot& s) {
  put_pid(e, s.self);
  put_queue_engine(e, s.engine);
  put_reorder(e, s.reorder);
  e.put_varint(s.next_seq);
  e.put_varint(s.occurrence_count);
}

detect::CentralSink::Snapshot get_central(wire::Decoder& d) {
  detect::CentralSink::Snapshot s;
  s.self = get_pid(d);
  s.engine = get_queue_engine(d);
  s.reorder = get_reorder(d);
  s.next_seq = d.get_varint();
  s.occurrence_count = d.get_varint();
  return s;
}

void put_slicing(wire::Encoder& e,
                 const detect::SlicingDetector::Snapshot& s) {
  put_pid(e, s.self);
  e.put_varint(s.slicer.streams.size());
  for (const auto& stream : s.slicer.streams) {
    put_pid(e, stream.key);
    e.put_varint(stream.hist.size());
    for (const auto& entry : stream.hist) {
      e.put_clock(entry.lo);
      e.put_clock(entry.hi);
    }
  }
  put_queue_engine(e, s.slicer.engine);
  e.put_u8(s.slicer.mode);
  e.put_varint(s.slicer.admitted);
  e.put_varint(s.slicer.discarded);
  e.put_varint(s.slicer.jcuts_computed);
  e.put_varint(s.slicer.jcuts_closed);
  e.put_varint(s.slicer.slice_comparisons);
  put_reorder(e, s.reorder);
  e.put_varint(s.next_seq);
  e.put_varint(s.occurrence_count);
}

detect::SlicingDetector::Snapshot get_slicing(wire::Decoder& d) {
  detect::SlicingDetector::Snapshot s;
  s.self = get_pid(d);
  const std::uint64_t ns = d.get_varint();
  for (std::uint64_t i = 0; i < ns; ++i) {
    detect::SlicingEngine::Snapshot::Stream stream;
    stream.key = get_pid(d);
    const std::uint64_t nh = d.get_varint();
    for (std::uint64_t j = 0; j < nh; ++j) {
      detect::SlicingEngine::Snapshot::Entry entry;
      entry.lo = d.get_clock();
      entry.hi = d.get_clock();
      stream.hist.push_back(std::move(entry));
    }
    s.slicer.streams.push_back(std::move(stream));
  }
  s.slicer.engine = get_queue_engine(d);
  s.slicer.mode = d.get_u8();
  s.slicer.admitted = d.get_varint();
  s.slicer.discarded = d.get_varint();
  s.slicer.jcuts_computed = d.get_varint();
  s.slicer.jcuts_closed = d.get_varint();
  s.slicer.slice_comparisons = d.get_varint();
  s.reorder = get_reorder(d);
  s.next_seq = d.get_varint();
  s.occurrence_count = d.get_varint();
  return s;
}

void put_hier(wire::Encoder& e, const core::HierNodeEngine::Snapshot& s) {
  put_pid(e, s.self);
  e.put_u8(s.has_parent ? 1 : 0);
  put_queue_engine(e, s.engine);
  put_reorder(e, s.reorder);
  e.put_varint(s.next_seq);
  e.put_varint(s.occurrence_count);
  put_optional_interval(e, s.last_report);
}

core::HierNodeEngine::Snapshot get_hier(wire::Decoder& d) {
  core::HierNodeEngine::Snapshot s;
  s.self = get_pid(d);
  s.has_parent = d.get_u8() != 0;
  s.engine = get_queue_engine(d);
  s.reorder = get_reorder(d);
  s.next_seq = d.get_varint();
  s.occurrence_count = d.get_varint();
  s.last_report = get_optional_interval(d);
  return s;
}

/// Run a decode body with wire decode failures mapped to CkptError, and
/// reject trailing garbage — a section that decodes but does not consume
/// its payload exactly is corrupt.
template <typename Fn>
auto decode_section(std::span<const std::uint8_t> bytes, const char* what,
                    Fn&& fn) {
  try {
    wire::Decoder d(bytes);
    if (d.get_u8() != kSectionVersion) {
      throw CkptError(std::string("ckpt: unsupported ") + what +
                      " section version");
    }
    auto out = fn(d);
    if (!d.exhausted()) {
      throw CkptError(std::string("ckpt: trailing bytes in ") + what +
                      " section");
    }
    return out;
  } catch (const wire::DecodeError& err) {
    throw CkptError(std::string("ckpt: malformed ") + what +
                    " section: " + err.what());
  }
}

}  // namespace

// ---- Detector ---------------------------------------------------------------

std::vector<std::uint8_t> encode_detector(const DetectorImage& image) {
  wire::Encoder e(wire::WireFormat::kDelta);
  e.put_u8(kSectionVersion);
  e.put_u8(static_cast<std::uint8_t>(image.kind));
  e.put_varint(image.consumed_events);
  switch (image.kind) {
    case EngineKind::kCentral:
      put_central(e, image.central);
      break;
    case EngineKind::kSlicing:
      put_slicing(e, image.slicing);
      break;
    case EngineKind::kHier:
      put_hier(e, image.hier);
      break;
  }
  return e.take();
}

DetectorImage decode_detector(std::span<const std::uint8_t> bytes) {
  return decode_section(bytes, "detector", [](wire::Decoder& d) {
    DetectorImage image;
    const std::uint8_t kind = d.get_u8();
    if (kind > static_cast<std::uint8_t>(EngineKind::kHier)) {
      throw CkptError("ckpt: unknown detector engine kind");
    }
    image.kind = static_cast<EngineKind>(kind);
    image.consumed_events = d.get_varint();
    switch (image.kind) {
      case EngineKind::kCentral:
        image.central = get_central(d);
        break;
      case EngineKind::kSlicing:
        image.slicing = get_slicing(d);
        break;
      case EngineKind::kHier:
        image.hier = get_hier(d);
        break;
    }
    return image;
  });
}

// ---- Session ----------------------------------------------------------------

std::vector<std::uint8_t> encode_session(const SessionState& state) {
  wire::Encoder e(wire::WireFormat::kDelta);
  e.put_u8(kSectionVersion);
  put_pid(e, state.self);
  e.put_varint(state.epoch);
  e.put_varint(state.send.size());
  for (const auto& ps : state.send) {
    put_pid(e, ps.peer);
    e.put_varint(ps.next_seq);
    e.put_varint(ps.unacked.size());
    for (const auto& u : ps.unacked) {
      e.put_varint(u.seq);
      e.put_varint(u.body.size());
      for (const std::uint8_t b : u.body) {
        e.put_u8(b);
      }
      e.put_varint(u.attempts);
      e.put_varint(u.dst_epoch);
    }
  }
  e.put_varint(state.recv.size());
  for (const auto& pr : state.recv) {
    put_pid(e, pr.peer);
    e.put_varint(pr.epoch);
    e.put_varint(pr.cum);
    e.put_varint(pr.above.size());
    for (const SeqNum s : pr.above) {
      e.put_varint(s);
    }
  }
  e.put_varint(state.peer_epochs.size());
  for (const auto& [peer, epoch] : state.peer_epochs) {
    put_pid(e, peer);
    e.put_varint(epoch);
  }
  return e.take();
}

SessionState decode_session(std::span<const std::uint8_t> bytes) {
  return decode_section(bytes, "session", [](wire::Decoder& d) {
    SessionState state;
    state.self = get_pid(d);
    state.epoch = d.get_varint();
    const std::uint64_t nsend = d.get_varint();
    for (std::uint64_t i = 0; i < nsend; ++i) {
      SessionState::PeerSend ps;
      ps.peer = get_pid(d);
      ps.next_seq = d.get_varint();
      const std::uint64_t nun = d.get_varint();
      for (std::uint64_t j = 0; j < nun; ++j) {
        SessionState::Unacked u;
        u.seq = d.get_varint();
        const std::uint64_t len = d.get_varint();
        if (len > d.remaining()) {
          throw CkptError("ckpt: session body length exceeds payload");
        }
        u.body.reserve(len);
        for (std::uint64_t k = 0; k < len; ++k) {
          u.body.push_back(d.get_u8());
        }
        u.attempts = static_cast<std::uint32_t>(d.get_varint());
        u.dst_epoch = d.get_varint();
        ps.unacked.push_back(std::move(u));
      }
      state.send.push_back(std::move(ps));
    }
    const std::uint64_t nrecv = d.get_varint();
    for (std::uint64_t i = 0; i < nrecv; ++i) {
      SessionState::PeerRecv pr;
      pr.peer = get_pid(d);
      pr.epoch = d.get_varint();
      pr.cum = d.get_varint();
      const std::uint64_t na = d.get_varint();
      for (std::uint64_t j = 0; j < na; ++j) {
        pr.above.push_back(d.get_varint());
      }
      state.recv.push_back(std::move(pr));
    }
    const std::uint64_t ne = d.get_varint();
    for (std::uint64_t i = 0; i < ne; ++i) {
      const ProcessId peer = get_pid(d);
      const std::uint64_t epoch = d.get_varint();
      state.peer_epochs.emplace_back(peer, epoch);
    }
    return state;
  });
}

// ---- Fault-tolerance layer --------------------------------------------------

std::vector<std::uint8_t> encode_ft(const FtState& state) {
  wire::Encoder e(wire::WireFormat::kDelta);
  e.put_u8(kSectionVersion);
  put_pid(e, state.heartbeat.parent);
  e.put_u8(state.heartbeat.is_root ? 1 : 0);
  e.put_u8(state.heartbeat.attached ? 1 : 0);
  e.put_varint(state.heartbeat.root_path.size());
  for (const ProcessId p : state.heartbeat.root_path) {
    put_pid(e, p);
  }
  e.put_varint(state.heartbeat.children.size());
  for (const ProcessId c : state.heartbeat.children) {
    put_pid(e, c);
  }
  e.put_u8(state.reattach.mode);
  put_pid(e, state.reattach.forbidden);
  e.put_varint(static_cast<std::uint64_t>(state.reattach.retries));
  e.put_u8(state.reattach.searching ? 1 : 0);
  return e.take();
}

FtState decode_ft(std::span<const std::uint8_t> bytes) {
  return decode_section(bytes, "ft", [](wire::Decoder& d) {
    FtState state;
    state.heartbeat.parent = get_pid(d);
    state.heartbeat.is_root = d.get_u8() != 0;
    state.heartbeat.attached = d.get_u8() != 0;
    const std::uint64_t np = d.get_varint();
    for (std::uint64_t i = 0; i < np; ++i) {
      state.heartbeat.root_path.push_back(get_pid(d));
    }
    const std::uint64_t nc = d.get_varint();
    for (std::uint64_t i = 0; i < nc; ++i) {
      state.heartbeat.children.push_back(get_pid(d));
    }
    state.reattach.mode = d.get_u8();
    if (state.reattach.mode >
        static_cast<std::uint8_t>(ft::ReattachProtocol::Mode::kRootMerge)) {
      throw CkptError("ckpt: unknown reattach mode");
    }
    state.reattach.forbidden = get_pid(d);
    state.reattach.retries = static_cast<int>(d.get_varint());
    state.reattach.searching = d.get_u8() != 0;
    return state;
  });
}

// ---- Session-epoch table ----------------------------------------------------

std::vector<std::uint8_t> encode_epochs(const EpochTable& table) {
  wire::Encoder e(wire::WireFormat::kDelta);
  e.put_u8(kSectionVersion);
  e.put_varint(table.epochs.size());
  for (const auto& [node, epoch] : table.epochs) {
    put_pid(e, node);
    e.put_varint(epoch);
  }
  return e.take();
}

EpochTable decode_epochs(std::span<const std::uint8_t> bytes) {
  return decode_section(bytes, "epoch table", [](wire::Decoder& d) {
    EpochTable table;
    const std::uint64_t n = d.get_varint();
    for (std::uint64_t i = 0; i < n; ++i) {
      const ProcessId node = get_pid(d);
      const std::uint64_t epoch = d.get_varint();
      table.epochs.emplace_back(node, epoch);
    }
    return table;
  });
}

}  // namespace hpd::ckpt
