// Backend-neutral image of rt::NodeSession's reliable-delivery state.
//
// The checkpoint subsystem sits below rt in the layering DAG (rt hosts the
// session over sockets and timers; ckpt must stay usable by the runner and
// the tools without dragging the live runtime in), so the session cannot be
// serialized by naming rt types here. Instead rt::NodeSession exports into
// this plain-data struct (export_state) and rebuilds from it
// (import_state); ckpt/snapshot serializes the struct.
//
// What is deliberately absent: retransmit deadlines and backoff state
// (steady-clock readings are meaningless in a new process — import
// schedules every unacked message for immediate retransmission), and
// chaos-delayed frames (perturbations die with the incarnation).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace hpd::ckpt {

struct SessionState {
  /// One message accepted by the session layer but not yet acknowledged.
  struct Unacked {
    SeqNum seq = 0;
    std::vector<std::uint8_t> body;  ///< encoded DATA payload (unframed)
    std::uint32_t attempts = 0;      ///< transmissions already performed
    std::uint64_t dst_epoch = 0;     ///< destination incarnation targeted
  };
  struct PeerSend {
    ProcessId peer = kNoProcess;
    SeqNum next_seq = 1;
    std::vector<Unacked> unacked;  ///< ascending seq
  };
  /// Receive window for one sender (everything <= cum plus `above` has
  /// been delivered within the sender incarnation `epoch`).
  struct PeerRecv {
    ProcessId peer = kNoProcess;
    std::uint64_t epoch = 0;
    SeqNum cum = 0;
    std::vector<SeqNum> above;  ///< ascending
  };

  ProcessId self = kNoProcess;
  std::uint64_t epoch = 1;
  std::vector<PeerSend> send;  ///< ascending peer
  std::vector<PeerRecv> recv;  ///< ascending peer
  /// Last observed incarnation per peer (absent == 1).
  std::vector<std::pair<ProcessId, std::uint64_t>> peer_epochs;
};

}  // namespace hpd::ckpt
