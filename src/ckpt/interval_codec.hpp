// Internal helpers shared by the ckpt codecs (snapshot sections and the
// durable event stream): the checkpoint-only interval encoding. The wire
// protocol never ships completed_at — receivers do not need it — but both
// checkpoints and event streams must carry it so a restored detector
// reproduces occurrence latencies bit-exactly.
//
// Internal to src/ckpt; include nowhere else (the ckpt-serialization lint
// rule confines checkpoint serialization to this directory plus src/wire).
#pragma once

#include <bit>
#include <cstdint>

#include "interval/interval.hpp"
#include "wire/codec.hpp"

namespace hpd::ckpt::internal {

inline void put_interval_full(wire::Encoder& e, const Interval& x) {
  e.put_interval(x);
  e.put_varint(std::bit_cast<std::uint64_t>(x.completed_at));
}

inline Interval get_interval_full(wire::Decoder& d) {
  Interval x = d.get_interval();
  x.completed_at = std::bit_cast<double>(d.get_varint());
  return x;
}

}  // namespace hpd::ckpt::internal
