// Crash-consistent checkpoint files.
//
// A checkpoint file is a self-describing container for the serialized
// snapshot sections produced by ckpt/snapshot:
//
//   magic    "HPDCKPT1" (8 bytes, raw)
//   frames   wire/frame framing: varint length + payload + CRC-32C, so
//            every section is individually integrity-checked
//     META     u8 0x01, then varint format_version (currently 1), varint
//              generation, u8 engine kind, varint consumed_events, varint
//              occurrences_emitted — always the first frame
//     DETECTOR u8 0x02 + ckpt::encode_detector bytes      (optional)
//     SESSION  u8 0x03 + ckpt::encode_session bytes       (optional)
//     FT       u8 0x04 + ckpt::encode_ft bytes            (optional)
//     END      u8 0xFF, empty — completeness marker
//
// A file without its END frame is torn (the writer died mid-write); any
// flipped bit fails a frame CRC; an unknown format_version is rejected.
// All three cases throw CkptError — a corrupt checkpoint is never
// silently loaded. Unknown section tags between META and END are skipped
// (CRC-checked but uninterpreted), so older readers tolerate newer minor
// sections.
//
// CheckpointStore turns single files into a durable sequence:
//   - write(): encode to `<name>-<gen>.ckpt.tmp`, fsync, rename over
//     `<name>-<gen>.ckpt`, fsync the directory, then atomically rewrite
//     `<name>.manifest` (the generation list, newest last) the same way.
//     Old generations beyond kKeepGenerations are pruned.
//   - load_latest(): walk the manifest newest-first (directory scan when
//     the manifest itself is missing or torn), skipping — and counting —
//     every torn or corrupt generation, and return the newest complete
//     one. A torn newest generation therefore falls back to its
//     predecessor instead of failing the restore.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "metrics/counters.hpp"

namespace hpd::ckpt {

class CkptError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Current checkpoint container format version.
inline constexpr std::uint32_t kFormatVersion = 1;

/// The always-present first section of a checkpoint file.
struct CheckpointMeta {
  std::uint32_t format_version = kFormatVersion;
  std::uint64_t generation = 0;  ///< assigned by CheckpointStore::write
  std::uint8_t engine_kind = 0;  ///< ckpt::EngineKind of the detector image
  /// Stream events the detector had ingested when the snapshot was taken.
  std::uint64_t consumed_events = 0;
  /// Occurrences the owner had emitted — restore truncates its output log
  /// back to this count so the stream continues without duplicates.
  std::uint64_t occurrences_emitted = 0;
};

/// A decoded checkpoint: the meta section plus the raw payload of each
/// optional section (empty == absent). Section payloads are produced /
/// consumed by the codecs in ckpt/snapshot.hpp.
struct CheckpointData {
  CheckpointMeta meta;
  std::vector<std::uint8_t> detector;
  std::vector<std::uint8_t> session;
  std::vector<std::uint8_t> ft;
};

/// Encode one checkpoint file image (magic + frames, including END).
std::vector<std::uint8_t> encode_checkpoint_file(const CheckpointData& data);

/// Decode and integrity-check a checkpoint file image. Throws CkptError on
/// a bad magic, CRC mismatch, truncation (missing END), trailing bytes,
/// version skew, or malformed META.
CheckpointData decode_checkpoint_file(std::span<const std::uint8_t> bytes);

class CheckpointStore {
 public:
  /// Generations retained on disk after a successful write.
  static constexpr std::size_t kKeepGenerations = 2;

  /// `dir` is created if missing; `name` prefixes this store's files so
  /// several nodes can share one directory.
  explicit CheckpointStore(std::string dir, std::string name = "node");

  /// Write `data` as the next generation (meta.generation is assigned).
  /// Returns the generation written. Throws CkptError on I/O failure.
  std::uint64_t write(CheckpointData data);

  /// Load the newest complete generation, falling back past torn/corrupt
  /// files (counted in counters().torn_writes_skipped). nullopt when no
  /// loadable checkpoint exists.
  std::optional<CheckpointData> load_latest();

  /// The generation the next write() will produce.
  std::uint64_t next_generation() const { return next_generation_; }

  const std::string& dir() const { return dir_; }

  CheckpointCounters& counters() { return counters_; }
  const CheckpointCounters& counters() const { return counters_; }

 private:
  std::string checkpoint_path(std::uint64_t generation) const;
  std::string manifest_path() const;
  /// Known generations, ascending: manifest contents when readable, else a
  /// directory scan for `<name>-*.ckpt`.
  std::vector<std::uint64_t> list_generations() const;
  void write_manifest(const std::vector<std::uint64_t>& generations);
  void prune(std::vector<std::uint64_t>& generations);

  std::string dir_;
  std::string name_;
  std::uint64_t next_generation_ = 1;
  CheckpointCounters counters_;
};

}  // namespace hpd::ckpt
