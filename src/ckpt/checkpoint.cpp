#include "ckpt/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "wire/codec.hpp"
#include "wire/frame.hpp"

namespace hpd::ckpt {

namespace {

constexpr char kMagic[8] = {'H', 'P', 'D', 'C', 'K', 'P', 'T', '1'};

// Section tags (first payload byte of every frame).
constexpr std::uint8_t kTagMeta = 0x01;
constexpr std::uint8_t kTagDetector = 0x02;
constexpr std::uint8_t kTagSession = 0x03;
constexpr std::uint8_t kTagFt = 0x04;
constexpr std::uint8_t kTagEnd = 0xFF;

void append_section(std::vector<std::uint8_t>& out, std::uint8_t tag,
                    std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> framed;
  framed.reserve(payload.size() + 1);
  framed.push_back(tag);
  framed.insert(framed.end(), payload.begin(), payload.end());
  wire::append_frame(out, framed);
}

CheckpointMeta decode_meta(std::span<const std::uint8_t> bytes) {
  try {
    wire::Decoder d(bytes);
    CheckpointMeta meta;
    const std::uint64_t version = d.get_varint();
    if (version != kFormatVersion) {
      throw CkptError("ckpt: unsupported checkpoint format version " +
                      std::to_string(version));
    }
    meta.format_version = static_cast<std::uint32_t>(version);
    meta.generation = d.get_varint();
    meta.engine_kind = d.get_u8();
    meta.consumed_events = d.get_varint();
    meta.occurrences_emitted = d.get_varint();
    if (!d.exhausted()) {
      throw CkptError("ckpt: trailing bytes in META section");
    }
    return meta;
  } catch (const wire::DecodeError& err) {
    throw CkptError(std::string("ckpt: malformed META section: ") +
                    err.what());
  }
}

/// write(2) the whole buffer, fsync, close. Throws CkptError on failure.
void write_file_durable(const std::string& path,
                        std::span<const std::uint8_t> bytes) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) {
    throw CkptError("ckpt: cannot create " + path + ": " +
                    std::strerror(errno));
  }
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      const int saved = errno;
      ::close(fd);
      throw CkptError("ckpt: write to " + path + " failed: " +
                      std::strerror(saved));
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    throw CkptError("ckpt: fsync of " + path + " failed: " +
                    std::strerror(saved));
  }
  ::close(fd);
}

/// fsync the directory so the rename that just landed in it is durable.
void sync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    return;  // best effort: some filesystems refuse directory fds
  }
  ::fsync(fd);
  ::close(fd);
}

/// Atomic publish: write to `<path>.tmp` (durable), rename over `path`,
/// fsync the containing directory. A crash at any point leaves either the
/// old file or the complete new one — never a partial write under `path`.
void publish_durable(const std::string& dir, const std::string& path,
                     std::span<const std::uint8_t> bytes) {
  const std::string tmp = path + ".tmp";
  write_file_durable(tmp, bytes);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int saved = errno;
    ::unlink(tmp.c_str());
    throw CkptError("ckpt: rename to " + path + " failed: " +
                    std::strerror(saved));
  }
  sync_dir(dir);
}

std::optional<std::vector<std::uint8_t>> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return std::nullopt;
  }
  std::vector<std::uint8_t> bytes;
  char buf[1 << 16];
  while (in.read(buf, sizeof(buf)) || in.gcount() > 0) {
    bytes.insert(bytes.end(), buf, buf + in.gcount());
  }
  return bytes;
}

}  // namespace

// ---- File format ------------------------------------------------------------

std::vector<std::uint8_t> encode_checkpoint_file(const CheckpointData& data) {
  std::vector<std::uint8_t> out(kMagic, kMagic + sizeof(kMagic));
  wire::Encoder meta;
  meta.put_varint(data.meta.format_version);
  meta.put_varint(data.meta.generation);
  meta.put_u8(data.meta.engine_kind);
  meta.put_varint(data.meta.consumed_events);
  meta.put_varint(data.meta.occurrences_emitted);
  append_section(out, kTagMeta, meta.bytes());
  if (!data.detector.empty()) {
    append_section(out, kTagDetector, data.detector);
  }
  if (!data.session.empty()) {
    append_section(out, kTagSession, data.session);
  }
  if (!data.ft.empty()) {
    append_section(out, kTagFt, data.ft);
  }
  append_section(out, kTagEnd, {});
  return out;
}

CheckpointData decode_checkpoint_file(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < sizeof(kMagic) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    throw CkptError("ckpt: bad checkpoint magic");
  }
  CheckpointData data;
  bool saw_meta = false;
  bool saw_end = false;
  try {
    wire::FrameReader reader;
    reader.feed(bytes.subspan(sizeof(kMagic)));
    while (auto payload = reader.next()) {
      if (saw_end) {
        throw CkptError("ckpt: section after END");
      }
      if (payload->empty()) {
        throw CkptError("ckpt: empty section frame");
      }
      const std::uint8_t tag = (*payload)[0];
      std::vector<std::uint8_t> body(payload->begin() + 1, payload->end());
      if (!saw_meta && tag != kTagMeta) {
        throw CkptError("ckpt: first section is not META");
      }
      switch (tag) {
        case kTagMeta:
          if (saw_meta) {
            throw CkptError("ckpt: duplicate META section");
          }
          data.meta = decode_meta(body);
          saw_meta = true;
          break;
        case kTagDetector:
          data.detector = std::move(body);
          break;
        case kTagSession:
          data.session = std::move(body);
          break;
        case kTagFt:
          data.ft = std::move(body);
          break;
        case kTagEnd:
          if (!body.empty()) {
            throw CkptError("ckpt: END section carries payload");
          }
          saw_end = true;
          break;
        default:
          break;  // unknown section: CRC-checked, skipped (forward compat)
      }
    }
    if (reader.buffered() != 0) {
      throw CkptError("ckpt: trailing partial frame");
    }
  } catch (const wire::FrameError& err) {
    throw CkptError(std::string("ckpt: corrupt frame: ") + err.what());
  }
  if (!saw_end) {
    throw CkptError("ckpt: truncated checkpoint (missing END)");
  }
  return data;
}

// ---- Store ------------------------------------------------------------------

CheckpointStore::CheckpointStore(std::string dir, std::string name)
    : dir_(std::move(dir)), name_(std::move(name)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    throw CkptError("ckpt: cannot create directory " + dir_ + ": " +
                    ec.message());
  }
  const std::vector<std::uint64_t> gens = list_generations();
  if (!gens.empty()) {
    next_generation_ = gens.back() + 1;
  }
}

std::string CheckpointStore::checkpoint_path(std::uint64_t generation) const {
  return dir_ + "/" + name_ + "-" + std::to_string(generation) + ".ckpt";
}

std::string CheckpointStore::manifest_path() const {
  return dir_ + "/" + name_ + ".manifest";
}

std::vector<std::uint64_t> CheckpointStore::list_generations() const {
  std::vector<std::uint64_t> gens;
  if (std::ifstream in{manifest_path()}) {
    std::string line;
    if (std::getline(in, line) && line == "hpd-ckpt-manifest v1") {
      while (std::getline(in, line)) {
        if (line.empty()) {
          continue;
        }
        errno = 0;
        char* end = nullptr;
        const unsigned long long gen = std::strtoull(line.c_str(), &end, 10);
        if (errno != 0 || end == line.c_str() || *end != '\0') {
          gens.clear();  // torn manifest: fall back to the directory scan
          break;
        }
        gens.push_back(gen);
      }
    }
  }
  if (gens.empty()) {
    // No (usable) manifest: scan for `<name>-<gen>.ckpt`.
    const std::string prefix = name_ + "-";
    std::error_code ec;
    for (const auto& entry :
         std::filesystem::directory_iterator(dir_, ec)) {
      const std::string fname = entry.path().filename().string();
      if (fname.size() <= prefix.size() + 5 ||
          fname.compare(0, prefix.size(), prefix) != 0 ||
          fname.compare(fname.size() - 5, 5, ".ckpt") != 0) {
        continue;
      }
      const std::string digits =
          fname.substr(prefix.size(), fname.size() - prefix.size() - 5);
      errno = 0;
      char* end = nullptr;
      const unsigned long long gen = std::strtoull(digits.c_str(), &end, 10);
      if (errno != 0 || end == digits.c_str() || *end != '\0') {
        continue;
      }
      gens.push_back(gen);
    }
  }
  std::sort(gens.begin(), gens.end());
  gens.erase(std::unique(gens.begin(), gens.end()), gens.end());
  return gens;
}

void CheckpointStore::write_manifest(
    const std::vector<std::uint64_t>& generations) {
  std::string text = "hpd-ckpt-manifest v1\n";
  for (const std::uint64_t gen : generations) {
    text += std::to_string(gen);
    text += '\n';
  }
  publish_durable(dir_, manifest_path(),
                  {reinterpret_cast<const std::uint8_t*>(text.data()),
                   text.size()});
}

void CheckpointStore::prune(std::vector<std::uint64_t>& generations) {
  while (generations.size() > kKeepGenerations) {
    ::unlink(checkpoint_path(generations.front()).c_str());
    generations.erase(generations.begin());
  }
}

std::uint64_t CheckpointStore::write(CheckpointData data) {
  const std::uint64_t gen = next_generation_++;
  data.meta.generation = gen;
  data.meta.format_version = kFormatVersion;
  const std::vector<std::uint8_t> bytes = encode_checkpoint_file(data);
  publish_durable(dir_, checkpoint_path(gen), bytes);
  std::vector<std::uint64_t> gens = list_generations();
  gens.push_back(gen);
  std::sort(gens.begin(), gens.end());
  gens.erase(std::unique(gens.begin(), gens.end()), gens.end());
  prune(gens);
  write_manifest(gens);
  counters_.writes += 1;
  counters_.bytes_written += bytes.size();
  return gen;
}

std::optional<CheckpointData> CheckpointStore::load_latest() {
  std::vector<std::uint64_t> gens = list_generations();
  for (auto it = gens.rbegin(); it != gens.rend(); ++it) {
    const auto bytes = read_file(checkpoint_path(*it));
    if (!bytes.has_value()) {
      counters_.torn_writes_skipped += 1;  // listed but unreadable
      continue;
    }
    try {
      CheckpointData data = decode_checkpoint_file(*bytes);
      counters_.restores += 1;
      counters_.restore_generation =
          std::max(counters_.restore_generation, *it);
      return data;
    } catch (const CkptError&) {
      counters_.torn_writes_skipped += 1;  // torn or corrupt: fall back one
    }
  }
  return std::nullopt;
}

}  // namespace hpd::ckpt
