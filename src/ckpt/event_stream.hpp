// Durable interval-event streams: the input format of hpd_sim --daemon.
//
// A stream file is the ingestion schedule of a detector sink, one interval
// per event, in arrival order:
//
//   magic    "HPDEVTS1" (8 bytes, raw)
//   frames   wire/frame framing (varint length + payload + CRC-32C)
//     HEADER  u8 0x00, varint stream format version (1), varint process
//             count — always the first frame
//     EVENT   u8 0x01 + interval (wire codec + completed_at)
//     END     u8 0xFF, empty — the producer finished; a reader that hits
//             EOF without END in non-follow mode reports truncation
//
// The writer flushes after every append so a tailing reader (--follow)
// sees events as they land and a killed producer leaves at worst one
// partial frame, which the CRC framing detects. Unknown tags between
// HEADER and END are skipped (CRC-checked), mirroring the checkpoint
// container's forward-compatibility rule.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>

#include "ckpt/checkpoint.hpp"
#include "interval/interval.hpp"
#include "wire/frame.hpp"

namespace hpd::ckpt {

/// Current event-stream format version (HEADER frame).
inline constexpr std::uint32_t kStreamVersion = 1;

class EventStreamWriter {
 public:
  /// Truncates `path` and writes the magic + HEADER frame immediately.
  /// Throws CkptError when the file cannot be created.
  EventStreamWriter(const std::string& path, std::size_t num_processes);

  /// Append one EVENT frame and flush it to the OS.
  void append(const Interval& x);

  /// Append the END frame and flush. Idempotent.
  void finish();

  std::uint64_t events_written() const { return events_; }

 private:
  void write_frame(const std::vector<std::uint8_t>& payload);

  std::ofstream out_;
  std::string path_;
  std::uint64_t events_ = 0;
  bool finished_ = false;
};

/// Incremental, tail-capable reader. next() never blocks: it reads whatever
/// bytes the file currently holds and reports kWait when no complete frame
/// is available yet, so a --follow daemon can interleave polling with
/// signal checks. Corruption (bad magic, CRC mismatch, malformed frame)
/// throws CkptError — a stream that lost sync is never silently resumed.
class EventStreamReader {
 public:
  enum class Status {
    kEvent,  ///< `out` holds the next interval
    kEnd,    ///< END frame seen; the stream is complete
    kWait,   ///< no complete frame buffered (EOF for now, or mid-frame)
  };

  /// Throws CkptError when `path` cannot be opened.
  explicit EventStreamReader(const std::string& path);

  /// Advance: consumes the HEADER frame transparently (see have_header()).
  Status next(Interval& out);

  /// True once the HEADER frame has been consumed; num_processes() is only
  /// meaningful afterwards.
  bool have_header() const { return have_header_; }
  std::size_t num_processes() const { return num_processes_; }

  std::uint64_t events_read() const { return events_; }

 private:
  /// Pull newly appended file bytes into the frame reader. Returns true if
  /// any arrived.
  bool fill();

  std::ifstream in_;
  std::string path_;
  wire::FrameReader frames_;
  bool checked_magic_ = false;
  std::size_t magic_seen_ = 0;  ///< verified magic prefix length
  bool have_header_ = false;
  bool saw_end_ = false;
  std::size_t num_processes_ = 0;
  std::uint64_t events_ = 0;
};

}  // namespace hpd::ckpt
