// Serialization of the per-layer snapshot images into checkpoint section
// payloads, using the delta-varint wire codec (wire/codec) plus one
// checkpoint-only extension: each interval's completed_at timestamp rides
// along (the wire protocol never ships it — receivers do not need it — but
// a restored detector must reproduce occurrence latencies exactly).
//
// This header and ckpt/checkpoint.hpp are the entire public surface of the
// checkpoint format; the ckpt-serialization lint rule keeps encode/decode
// of snapshots confined to src/ckpt (plus the primitives in src/wire).
// Every decode_* function throws CkptError on malformed input — truncated,
// bit-flipped, or version-skewed bytes are rejected, never UB.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "ckpt/session_state.hpp"
#include "core/hier_engine.hpp"
#include "detect/centralized.hpp"
#include "detect/slicing.hpp"
#include "ft/heartbeat.hpp"
#include "ft/reattach.hpp"

namespace hpd::ckpt {

/// Which detector engine a checkpointed image belongs to. Stable wire
/// values (META's engine_kind byte).
enum class EngineKind : std::uint8_t {
  kCentral = 0,
  kSlicing = 1,
  kHier = 2,
};

/// One detector's full state plus its ingestion progress. Exactly the
/// member matching `kind` is meaningful.
struct DetectorImage {
  EngineKind kind = EngineKind::kCentral;
  /// Stream events ingested when the snapshot was taken (mirrors
  /// CheckpointMeta::consumed_events for self-containment).
  std::uint64_t consumed_events = 0;
  detect::CentralSink::Snapshot central;
  detect::SlicingDetector::Snapshot slicing;
  core::HierNodeEngine::Snapshot hier;
};

std::vector<std::uint8_t> encode_detector(const DetectorImage& image);
DetectorImage decode_detector(std::span<const std::uint8_t> bytes);

std::vector<std::uint8_t> encode_session(const SessionState& state);
SessionState decode_session(std::span<const std::uint8_t> bytes);

/// Fault-tolerance layer state: tree wiring + reattach search parameters.
struct FtState {
  ft::HeartbeatAgent::Snapshot heartbeat;
  ft::ReattachProtocol::Snapshot reattach;
};

std::vector<std::uint8_t> encode_ft(const FtState& state);
FtState decode_ft(std::span<const std::uint8_t> bytes);

/// Per-node session-epoch table: the minimal durable session state of a
/// live run. Full session images are meaningless after a node crash
/// (shutdown() surfaces the in-flight state by design), but epochs must
/// survive a process restart so revived incarnations keep moving forward
/// and peers can never mistake a new life for a stale one. Stored in a
/// checkpoint file's SESSION payload slot by the live runner.
struct EpochTable {
  std::vector<std::pair<ProcessId, std::uint64_t>> epochs;  ///< ascending id
};

std::vector<std::uint8_t> encode_epochs(const EpochTable& table);
EpochTable decode_epochs(std::span<const std::uint8_t> bytes);

}  // namespace hpd::ckpt
