#include "metrics/counters.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace hpd {

namespace {
const std::string kUnknownType = "?";
}

void TransportCounters::add(const TransportCounters& other) {
  reliable_sent += other.reliable_sent;
  msgs_delivered += other.msgs_delivered;
  msgs_dropped += other.msgs_dropped;
  retransmits += other.retransmits;
  dups_suppressed += other.dups_suppressed;
  surfaced_losses += other.surfaced_losses;
  stale_rejected += other.stale_rejected;
  conn_resets += other.conn_resets;
  frame_errors += other.frame_errors;
  acks_sent += other.acks_sent;
  chaos_events += other.chaos_events;
}

void ReactorCounters::add(const ReactorCounters& other) {
  workers += other.workers;
  wakeups += other.wakeups;
  ready_events += other.ready_events;
  timer_fires += other.timer_fires;
  timers_scheduled += other.timers_scheduled;
  max_outbound_backlog =
      std::max(max_outbound_backlog, other.max_outbound_backlog);
  max_loop_micros = std::max(max_loop_micros, other.max_loop_micros);
}

void MetricsRegistry::name_message_type(int type, std::string name) {
  type_names_[type] = std::move(name);
}

const std::string& MetricsRegistry::message_type_name(int type) const {
  auto it = type_names_.find(type);
  return it == type_names_.end() ? kUnknownType : it->second;
}

void MetricsRegistry::on_send(ProcessId src, int type, std::size_t wire_words,
                              std::size_t wire_bytes) {
  ++msgs_total_;
  ++msgs_by_type_[type];
  wire_words_total_ += wire_words;
  wire_bytes_total_ += wire_bytes;
  if (wire_bytes != 0) {
    bytes_by_type_[type] += wire_bytes;
  }
  if (src >= 0 && static_cast<std::size_t>(src) < node_.size()) {
    ++node_[static_cast<std::size_t>(src)].msgs_sent;
    node_[static_cast<std::size_t>(src)].wire_words_sent += wire_words;
  }
}

void CheckpointCounters::add(const CheckpointCounters& other) {
  writes += other.writes;
  bytes_written += other.bytes_written;
  restores += other.restores;
  restore_generation = std::max(restore_generation, other.restore_generation);
  torn_writes_skipped += other.torn_writes_skipped;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  if (node_.size() < other.node_.size()) {
    node_.resize(other.node_.size());
  }
  for (std::size_t i = 0; i < other.node_.size(); ++i) {
    const NodeMetrics& src = other.node_[i];
    NodeMetrics& dst = node_[i];
    dst.msgs_sent += src.msgs_sent;
    dst.wire_words_sent += src.wire_words_sent;
    dst.intervals_enqueued += src.intervals_enqueued;
    dst.intervals_stored_peak =
        std::max(dst.intervals_stored_peak, src.intervals_stored_peak);
    dst.vc_comparisons += src.vc_comparisons;
    dst.detections += src.detections;
  }
  for (const auto& [type, k] : other.msgs_by_type_) {
    msgs_by_type_[type] += k;
  }
  for (const auto& [type, k] : other.bytes_by_type_) {
    bytes_by_type_[type] += k;
  }
  for (const auto& [type, name] : other.type_names_) {
    type_names_.emplace(type, name);
  }
  msgs_total_ += other.msgs_total_;
  wire_words_total_ += other.wire_words_total_;
  wire_bytes_total_ += other.wire_bytes_total_;
  transport_.add(other.transport_);
  reactor_.add(other.reactor_);
  checkpoint_.add(other.checkpoint_);
}

std::uint64_t MetricsRegistry::msgs_of_type(int type) const {
  auto it = msgs_by_type_.find(type);
  return it == msgs_by_type_.end() ? 0 : it->second;
}

std::uint64_t MetricsRegistry::bytes_of_type(int type) const {
  auto it = bytes_by_type_.find(type);
  return it == bytes_by_type_.end() ? 0 : it->second;
}

NodeMetrics& MetricsRegistry::node(ProcessId id) {
  HPD_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < node_.size(),
              "MetricsRegistry::node: bad id");
  return node_[static_cast<std::size_t>(id)];
}

const NodeMetrics& MetricsRegistry::node(ProcessId id) const {
  HPD_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < node_.size(),
              "MetricsRegistry::node: bad id");
  return node_[static_cast<std::size_t>(id)];
}

std::uint64_t MetricsRegistry::total_vc_comparisons() const {
  std::uint64_t sum = 0;
  for (const auto& m : node_) {
    sum += m.vc_comparisons;
  }
  return sum;
}

std::uint64_t MetricsRegistry::total_detections() const {
  std::uint64_t sum = 0;
  for (const auto& m : node_) {
    sum += m.detections;
  }
  return sum;
}

std::uint64_t MetricsRegistry::total_intervals_enqueued() const {
  std::uint64_t sum = 0;
  for (const auto& m : node_) {
    sum += m.intervals_enqueued;
  }
  return sum;
}

std::uint64_t MetricsRegistry::max_node_storage_peak() const {
  std::uint64_t best = 0;
  for (const auto& m : node_) {
    best = std::max(best, m.intervals_stored_peak);
  }
  return best;
}

std::uint64_t MetricsRegistry::sum_node_storage_peak() const {
  std::uint64_t sum = 0;
  for (const auto& m : node_) {
    sum += m.intervals_stored_peak;
  }
  return sum;
}

}  // namespace hpd
