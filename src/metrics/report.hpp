// Plain-text table / CSV rendering for bench and example output.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hpd {

/// A simple fixed-width table builder: set a header, append rows of cells,
/// print right-aligned columns. Numeric formatting is the caller's job.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Cell helpers.
  static std::string num(double v, int precision = 2);
  static std::string num(std::uint64_t v);

  void print(std::ostream& os) const;
  std::string to_string() const;

  /// Comma-separated dump (header + rows) for post-processing.
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hpd
