// Cost accounting for experiments: message counts (by type and in
// hop-weighted form), wire volume in O(n) vector-clock words, vector-clock
// comparison counts (the paper's time-complexity unit), and per-node
// storage peaks (the paper's space-complexity unit).
//
// Threading contract (the thread-confinement convention of
// common/thread_annotations.hpp / docs/STATIC_ANALYSIS.md): a
// MetricsRegistry is single-owner state, never shared between live
// threads, so its fields carry no HPD_GUARDED_BY annotations on purpose.
// Each sim run and each live node-loop thread writes its own private
// registry; merge_from() folds them together only after the writing
// threads have been joined (see rt/live_runner.cpp), which is the
// happens-before edge that makes the unsynchronized reads safe.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace hpd {

/// Session-layer accounting for the live transport's reliable-delivery
/// layer (rt/live_transport). Sim runs leave this zero: the simulated
/// network delivers exactly what the strategy plans, so there is no
/// retransmission machinery to count. The no-silent-loss invariant the
/// chaos suite checks is `msgs_delivered + surfaced_losses >= reliable_sent`
/// (every accepted message is either delivered or its loss is reported).
struct TransportCounters {
  std::uint64_t reliable_sent = 0;    ///< messages accepted by the session layer
  std::uint64_t msgs_delivered = 0;   ///< unique deliveries to protocol nodes
  std::uint64_t msgs_dropped = 0;     ///< refused before the session layer
  std::uint64_t retransmits = 0;      ///< DATA frames re-sent after timeout
  std::uint64_t dups_suppressed = 0;  ///< duplicate DATA discarded on receive
  std::uint64_t surfaced_losses = 0;  ///< abandoned sends reported upward
  std::uint64_t stale_rejected = 0;   ///< DATA from a superseded sender epoch
  std::uint64_t conn_resets = 0;      ///< connections torn down mid-stream
  std::uint64_t frame_errors = 0;     ///< CRC/decode failures on receive
  std::uint64_t acks_sent = 0;        ///< ACK frames emitted
  std::uint64_t chaos_events = 0;     ///< injected perturbations

  void add(const TransportCounters& other);
};

/// Event-loop accounting for the reactor live backend (rt/reactor): one
/// record per worker thread, merged after the workers are joined. Zero for
/// sim runs and for the thread-per-node backend. `ready_events / wakeups`
/// is the multiplexing ratio the reactor exists to raise.
struct ReactorCounters {
  std::uint64_t workers = 0;           ///< worker threads contributing
  std::uint64_t wakeups = 0;           ///< epoll_wait returns
  std::uint64_t ready_events = 0;      ///< fd readiness events dispatched
  std::uint64_t timer_fires = 0;       ///< timer-wheel expirations fired
  std::uint64_t timers_scheduled = 0;  ///< wheel insertions
  std::uint64_t max_outbound_backlog = 0;  ///< bytes, worst single connection
  std::uint64_t max_loop_micros = 0;   ///< worst single loop turn, wall µs

  /// Fold another record in: sums, except the maxima which take max.
  void add(const ReactorCounters& other);
};

/// Durability accounting for the checkpoint subsystem (src/ckpt). Written
/// by whoever owns the CheckpointStore — the daemon loop, or a live
/// backend's driver thread — under the same single-owner-then-merge
/// convention as every other counter block here. Zero when checkpointing
/// is off.
struct CheckpointCounters {
  std::uint64_t writes = 0;           ///< checkpoint files written
  std::uint64_t bytes_written = 0;    ///< total encoded checkpoint bytes
  std::uint64_t restores = 0;         ///< successful restores performed
  std::uint64_t restore_generation = 0;  ///< newest generation restored
  std::uint64_t torn_writes_skipped = 0; ///< corrupt/torn files fallen past

  /// Fold another record in: sums, except restore_generation takes max.
  void add(const CheckpointCounters& other);
};

struct NodeMetrics {
  std::uint64_t msgs_sent = 0;           ///< one-hop sends originated here
  std::uint64_t wire_words_sent = 0;     ///< payload volume originated here
  std::uint64_t intervals_enqueued = 0;  ///< intervals offered to this node's queues
  std::uint64_t intervals_stored_peak = 0;  ///< max simultaneous queued intervals
  std::uint64_t vc_comparisons = 0;      ///< timestamp comparisons performed here
  std::uint64_t detections = 0;          ///< solutions found at this node
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  explicit MetricsRegistry(std::size_t n) : node_(n) {}

  void resize(std::size_t n) { node_.resize(n); }
  std::size_t num_nodes() const { return node_.size(); }

  /// Register a human-readable name for a message type code (idempotent).
  void name_message_type(int type, std::string name);
  const std::string& message_type_name(int type) const;

  /// Record a one-hop message send. `wire_bytes` is non-zero only when the
  /// payload actually travelled encoded (ExperimentConfig::wire_encoding).
  void on_send(ProcessId src, int type, std::size_t wire_words,
               std::size_t wire_bytes = 0);

  /// Fold another registry into this one (counters add, per-node metrics add
  /// index-wise, names union). The live runtime gives every node thread a
  /// private registry and merges them once the threads have been joined —
  /// calling this while `other`'s owning thread still runs is a data race.
  void merge_from(const MetricsRegistry& other);

  /// Totals.
  std::uint64_t msgs_total() const { return msgs_total_; }
  std::uint64_t msgs_of_type(int type) const;
  std::uint64_t wire_words_total() const { return wire_words_total_; }
  std::uint64_t wire_bytes_total() const { return wire_bytes_total_; }
  std::uint64_t bytes_of_type(int type) const;

  /// Per-node counters; valid ids only.
  NodeMetrics& node(ProcessId id);
  const NodeMetrics& node(ProcessId id) const;

  /// Aggregates over nodes.
  std::uint64_t total_vc_comparisons() const;
  std::uint64_t total_detections() const;
  std::uint64_t total_intervals_enqueued() const;
  std::uint64_t max_node_storage_peak() const;
  std::uint64_t sum_node_storage_peak() const;

  const std::map<int, std::uint64_t>& msgs_by_type() const {
    return msgs_by_type_;
  }

  /// Live-transport session-layer counters (zero for sim runs). Written by
  /// the owning node's loop thread, like every other field here.
  TransportCounters& transport() { return transport_; }
  const TransportCounters& transport() const { return transport_; }

  /// Reactor-backend event-loop counters (zero for sim / thread-backend
  /// runs). Same ownership rule: merged only after the workers stopped.
  ReactorCounters& reactor() { return reactor_; }
  const ReactorCounters& reactor() const { return reactor_; }

  /// Checkpoint-subsystem counters (zero unless a checkpoint directory is
  /// configured). Same ownership rule.
  CheckpointCounters& checkpoint() { return checkpoint_; }
  const CheckpointCounters& checkpoint() const { return checkpoint_; }

 private:
  std::vector<NodeMetrics> node_;
  TransportCounters transport_;
  ReactorCounters reactor_;
  CheckpointCounters checkpoint_;
  std::map<int, std::uint64_t> msgs_by_type_;
  std::map<int, std::uint64_t> bytes_by_type_;
  std::map<int, std::string> type_names_;
  std::uint64_t msgs_total_ = 0;
  std::uint64_t wire_words_total_ = 0;
  std::uint64_t wire_bytes_total_ = 0;
};

}  // namespace hpd
