#include "metrics/report.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/assert.hpp"

namespace hpd {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  HPD_REQUIRE(!header_.empty(), "TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> cells) {
  HPD_REQUIRE(cells.size() == header_.size(),
              "TextTable: row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::num(std::uint64_t v) { return std::to_string(v); }

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(width[c]))
         << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = header_.size() - 1;
  for (const std::size_t w : width) {
    total += w + 1;
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

void TextTable::print_csv(std::ostream& os) const {
  auto line = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : ",") << row[c];
    }
    os << '\n';
  };
  line(header_);
  for (const auto& row : rows_) {
    line(row);
  }
}

}  // namespace hpd
