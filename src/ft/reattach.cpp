#include "ft/reattach.hpp"

#include <algorithm>
#include <tuple>

#include "common/assert.hpp"

namespace hpd::ft {

ReattachProtocol::ReattachProtocol(ProcessId self, const ReattachConfig& config,
                                   Hooks hooks)
    : self_(self), config_(config), hooks_(std::move(hooks)) {
  HPD_REQUIRE(config_.probe_window > 0.0 && config_.retry_backoff > 0.0 &&
                  config_.max_retries >= 1,
              "ReattachProtocol: bad config");
}

void ReattachProtocol::reset() {
  state_ = State::kIdle;
  awaiting_window_ = false;
  awaiting_retry_ = false;
  acks_.clear();
  pending_parent_ = kNoProcess;
  retries_ = 0;
}

ReattachProtocol::Snapshot ReattachProtocol::snapshot() const {
  Snapshot snap;
  snap.mode = static_cast<std::uint8_t>(mode_);
  snap.forbidden = forbidden_;
  snap.retries = retries_;
  snap.searching = searching();
  return snap;
}

void ReattachProtocol::restore(const Snapshot& snap) {
  reset();
  mode_ = static_cast<Mode>(snap.mode);
  forbidden_ = snap.forbidden;
  retries_ = snap.retries;
}

void ReattachProtocol::begin(Mode mode, ProcessId forbidden) {
  if (searching()) {
    return;
  }
  mode_ = mode;
  forbidden_ = forbidden;
  retries_ = 0;
  start_probe_round();
}

void ReattachProtocol::start_probe_round() {
  state_ = State::kProbing;
  acks_.clear();
  pending_parent_ = kNoProcess;
  awaiting_window_ = true;
  hooks_.broadcast_probe();
  hooks_.set_timer(kProbeWindowTag, config_.probe_window);
}

void ReattachProtocol::on_probe_ack(ProcessId from,
                                    const proto::ProbeAckPayload& ack) {
  if (state_ != State::kProbing || !awaiting_window_) {
    return;
  }
  acks_.push_back(Ack{from, ack.attached, ack.root_path});
}

void ReattachProtocol::on_timer(int tag) {
  if (tag == kProbeWindowTag) {
    if (!awaiting_window_) {
      return;  // stale
    }
    awaiting_window_ = false;
    if (state_ == State::kProbing) {
      on_probe_window_expired();
    }
  } else if (tag == kRetryTag) {
    if (!awaiting_retry_) {
      return;  // stale
    }
    awaiting_retry_ = false;
    if (state_ == State::kProbing) {
      start_probe_round();
    } else if (state_ == State::kAttaching) {
      // The prospective parent never answered (it may have died too).
      ++retries_;
      if (retries_ >= config_.max_retries) {
        exhausted();
      } else {
        start_probe_round();
      }
    }
  }
}

void ReattachProtocol::on_probe_window_expired() {
  // Viable adoption candidates: attached, and adopting the orphan's subtree
  // creates no cycle (neither the orphan nor this node on their root path).
  const Ack* best = nullptr;
  for (const Ack& a : acks_) {
    if (!a.attached) {
      continue;
    }
    const auto& path = a.root_path;
    if (std::find(path.begin(), path.end(), self_) != path.end() ||
        std::find(path.begin(), path.end(), forbidden_) != path.end()) {
      continue;  // inside the searching subtree (or a stale path through it)
    }
    if (mode_ == Mode::kRootMerge &&
        (path.empty() || path.back() >= self_)) {
      continue;  // merge only under a smaller-id root (cycle-free tie-break)
    }
    // Preference order: smallest root id (join the canonical tree — a
    // recovering node next to a tiny partition must not pick it just
    // because it is shallower, or the partitions can never merge), then
    // smallest depth, then smallest responder id.
    auto rank = [](const Ack& x) {
      return std::make_tuple(x.root_path.empty() ? kNoProcess
                                                 : x.root_path.back(),
                             x.root_path.size(), x.from);
    };
    if (best == nullptr || rank(a) < rank(*best)) {
      best = &a;
    }
  }
  if (best != nullptr) {
    state_ = State::kAttaching;
    pending_parent_ = best->from;
    hooks_.send_attach_req(best->from);
    // Attach-ack deadline.
    awaiting_retry_ = true;
    hooks_.set_timer(kRetryTag, config_.probe_window + config_.retry_backoff);
    return;
  }

  // No viable candidate this round.
  if (mode_ == Mode::kRootMerge) {
    exhausted();  // single-shot: the periodic re-probe will try again
    return;
  }
  ++retries_;
  bool smaller_orphan = false;
  if (mode_ == Mode::kOrphan) {
    // Another orphan with a smaller id should head the new tree; wait for
    // it to settle and adopt us through a later probe.
    for (const Ack& a : acks_) {
      if (!a.attached && a.from < self_) {
        smaller_orphan = true;
        break;
      }
    }
  }
  if (retries_ >= config_.max_retries ||
      (!smaller_orphan && retries_ >= 2)) {
    exhausted();
    return;
  }
  retry();
}

void ReattachProtocol::retry() {
  state_ = State::kProbing;
  acks_.clear();
  if (!awaiting_retry_) {
    awaiting_retry_ = true;
    hooks_.set_timer(kRetryTag, config_.retry_backoff);
  }
}

void ReattachProtocol::on_attach_ack(ProcessId from,
                                     const proto::AttachAckPayload& ack) {
  if (state_ != State::kAttaching || from != pending_parent_) {
    return;
  }
  if (ack.accepted) {
    state_ = State::kAttached;
    hooks_.on_attached(from);
  } else {
    retry();
  }
}

void ReattachProtocol::exhausted() {
  state_ = State::kIdle;
  hooks_.on_search_exhausted();
}

}  // namespace hpd::ft
