#include "ft/heartbeat.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace hpd::ft {

HeartbeatAgent::HeartbeatAgent(ProcessId self, const HeartbeatConfig& config,
                               Hooks hooks)
    : self_(self), config_(config), hooks_(std::move(hooks)) {
  HPD_REQUIRE(config_.period > 0.0 && config_.timeout_multiplier > 1.0,
              "HeartbeatAgent: bad config");
}

void HeartbeatAgent::init_as_root() {
  is_root_ = true;
  attached_ = true;
  parent_ = kNoProcess;
  root_path_ = {self_};
}

void HeartbeatAgent::init_with_parent(ProcessId parent,
                                      std::vector<ProcessId> root_path) {
  HPD_REQUIRE(!root_path.empty() && root_path.front() == self_,
              "HeartbeatAgent: root path must start at self");
  parent_ = parent;
  is_root_ = false;
  attached_ = true;
  root_path_ = std::move(root_path);
  track(parent);
}

void HeartbeatAgent::add_child(ProcessId child) {
  if (std::find(children_.begin(), children_.end(), child) ==
      children_.end()) {
    children_.push_back(child);
    track(child);
  }
}

void HeartbeatAgent::remove_child(ProcessId child) {
  children_.erase(std::remove(children_.begin(), children_.end(), child),
                  children_.end());
  last_heard_.erase(child);
}

void HeartbeatAgent::set_parent(ProcessId parent) {
  if (parent_ != kNoProcess) {
    last_heard_.erase(parent_);
  }
  loop_streak_ = 0;
  parent_ = parent;
  is_root_ = false;
  // Optimistically attached; confirmed/refreshed by the parent's beats.
  attached_ = true;
  root_path_ = {self_, parent};
  track(parent);
}

void HeartbeatAgent::clear_parent() {
  if (parent_ != kNoProcess) {
    last_heard_.erase(parent_);
  }
  loop_streak_ = 0;
  parent_ = kNoProcess;
  attached_ = false;
  root_path_.clear();
}

void HeartbeatAgent::reset() {
  parent_ = kNoProcess;
  loop_streak_ = 0;
  is_root_ = false;
  attached_ = false;
  root_path_.clear();
  children_.clear();
  last_heard_.clear();
}

void HeartbeatAgent::become_root() {
  if (parent_ != kNoProcess) {
    last_heard_.erase(parent_);
  }
  parent_ = kNoProcess;
  init_as_root();
}

HeartbeatAgent::Snapshot HeartbeatAgent::snapshot() const {
  Snapshot snap;
  snap.parent = parent_;
  snap.is_root = is_root_;
  snap.attached = attached_;
  snap.root_path = root_path_;
  snap.children = children_;
  return snap;
}

void HeartbeatAgent::restore(const Snapshot& snap) {
  reset();
  parent_ = snap.parent;
  is_root_ = snap.is_root;
  attached_ = snap.attached;
  root_path_ = snap.root_path;
  children_ = snap.children;
  // Re-arm every tracked neighbour at restore-time now(): a restored node
  // grants its neighbours a full timeout before declaring anyone dead.
  if (parent_ != kNoProcess) {
    track(parent_);
  }
  for (const ProcessId child : children_) {
    track(child);
  }
}

void HeartbeatAgent::track(ProcessId neighbor) {
  last_heard_[neighbor] = hooks_.now ? hooks_.now() : 0.0;
}

proto::HeartbeatPayload HeartbeatAgent::make_payload() const {
  proto::HeartbeatPayload p;
  p.attached = attached_;
  p.root_path = attached_ ? root_path_ : std::vector<ProcessId>{};
  return p;
}

void HeartbeatAgent::on_tick() {
  const proto::HeartbeatPayload payload = make_payload();
  if (parent_ != kNoProcess && hooks_.send) {
    hooks_.send(parent_, payload);
  }
  for (const ProcessId c : children_) {
    if (hooks_.send) {
      hooks_.send(c, payload);
    }
  }
  check_deadlines();
}

void HeartbeatAgent::on_heartbeat(ProcessId from,
                                  const proto::HeartbeatPayload& payload) {
  auto it = last_heard_.find(from);
  if (it == last_heard_.end()) {
    return;  // not a tracked neighbour (stale beat from an old relation)
  }
  it->second = hooks_.now ? hooks_.now() : 0.0;
  if (from == parent_) {
    // Refresh ancestry from the parent's advertised path — unless the
    // advertised path already contains us. A single looping beat is normal
    // transient staleness during a repair (e.g. right after a FLIP, before
    // the new ancestry has propagated); a *persistent* loop means stale
    // repair data actually wired a cycle, which would silently destroy the
    // root — break it here by treating the parent as failed.
    const bool loops = std::find(payload.root_path.begin(),
                                 payload.root_path.end(),
                                 self_) != payload.root_path.end();
    if (payload.attached && !loops) {
      loop_streak_ = 0;
      attached_ = true;
      root_path_.clear();
      root_path_.push_back(self_);
      root_path_.insert(root_path_.end(), payload.root_path.begin(),
                        payload.root_path.end());
    } else if (payload.attached && loops) {
      if (++loop_streak_ >= kLoopBreakStreak) {
        const ProcessId broken = parent_;
        loop_streak_ = 0;
        clear_parent();
        if (hooks_.on_failed) {
          hooks_.on_failed(broken, /*was_parent=*/true);
        }
      }
    } else {
      attached_ = false;  // an ancestor is orphaned; propagate down
    }
  }
}

void HeartbeatAgent::check_deadlines() {
  const SimTime now = hooks_.now ? hooks_.now() : 0.0;
  const SimTime deadline = config_.period * config_.timeout_multiplier;
  // Collect first: hooks may mutate the tracked sets.
  std::vector<std::pair<ProcessId, bool>> failed;
  for (const auto& [nbr, heard] : last_heard_) {
    if (now - heard > deadline) {
      failed.emplace_back(nbr, nbr == parent_);
    }
  }
  for (const auto& [nbr, was_parent] : failed) {
    if (was_parent) {
      clear_parent();
    } else {
      remove_child(nbr);
    }
    if (hooks_.on_failed) {
      hooks_.on_failed(nbr, was_parent);
    }
  }
}

}  // namespace hpd::ft
