// Parent search after losing the parent (Section III-F).
//
// The protocol probes the node's topology neighbours and attaches to the
// shallowest live, attached, non-descendant responder. It runs in two
// modes:
//
//  * kOrphan — the node itself lost its parent. If only other orphans with
//    smaller ids respond, it waits (they will head the new tree); when
//    nothing viable ever responds the search is *exhausted* and the owner
//    decides what next: delegate the search into the subtree, or declare
//    this node root of the surviving partition.
//  * kDelegate — the node searches on behalf of an orphaned ancestor
//    (`forbidden`), because the orphan's own neighbourhood is gone. Any
//    responder whose root path touches the orphan's subtree is rejected
//    (the path necessarily contains `forbidden`). Exhaustion is reported
//    quickly — the DFS over the subtree continues elsewhere.
//
// When a delegate attaches, the runner re-roots the orphaned subtree at it
// with the FLIP chain (proto::kFlip/kFlipAck/kFlipGo) — this realizes the
// paper's "establish a link between a node in the subtree and its
// neighbour which is still in the spanning tree".
//
// Pure state machine; the runner supplies messaging and timers.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hpp"
#include "proto/messages.hpp"

namespace hpd::ft {

struct ReattachConfig {
  /// How long to collect PROBE_ACKs. Must exceed the worst-case
  /// probe + ack round trip, or live candidates are invisible and the
  /// search degrades toward partition-root behaviour.
  SimTime probe_window = 4.0;
  SimTime retry_backoff = 6.0;  ///< pause before re-probing
  int max_retries = 6;          ///< then give up (search exhausted)
  /// How often a partition root re-probes its neighbourhood for a tree to
  /// merge back into (0 disables partition healing).
  SimTime root_merge_period = 30.0;
};

class ReattachProtocol {
 public:
  enum class State { kIdle, kProbing, kAttaching, kAttached };
  enum class Mode {
    kOrphan,    ///< this node lost its parent
    kDelegate,  ///< searching on behalf of an orphaned ancestor
    kRootMerge, ///< a partition root probing for a tree to merge into;
                ///< only trees rooted at a SMALLER id are joined (so two
                ///< roots can never adopt each other and form a cycle)
  };

  /// Timer tags the runner must route back via on_timer.
  static constexpr int kProbeWindowTag = 1;
  static constexpr int kRetryTag = 2;

  struct Hooks {
    std::function<void()> broadcast_probe;  ///< PROBE to topology neighbours
    std::function<void(ProcessId dst)> send_attach_req;
    std::function<void(int tag, SimTime delay)> set_timer;
    std::function<void(ProcessId new_parent)> on_attached;
    /// No viable parent exists around this node; the owner decides whether
    /// to delegate deeper, report failure, or become root. The protocol is
    /// back in kIdle when this fires.
    std::function<void()> on_search_exhausted;
  };

  ReattachProtocol(ProcessId self, const ReattachConfig& config, Hooks hooks);

  State state() const { return state_; }
  Mode mode() const { return mode_; }
  bool searching() const {
    return state_ == State::kProbing || state_ == State::kAttaching;
  }
  int retries() const { return retries_; }

  /// Start searching. `forbidden` is the orphan whose subtree must not be
  /// attached to (== self for kOrphan mode). No-op if already searching.
  void begin(Mode mode, ProcessId forbidden);

  /// Hard reset to kIdle (crash recovery: any in-flight search died with
  /// the old incarnation; outstanding timers become stale no-ops).
  void reset();

  void on_probe_ack(ProcessId from, const proto::ProbeAckPayload& ack);
  void on_attach_ack(ProcessId from, const proto::AttachAckPayload& ack);
  void on_timer(int tag);

  // ---- Checkpoint surface (durability) ------------------------------------

  /// Image of the durable part of the protocol. In-flight probe rounds are
  /// NOT captured — their timers and collected ACKs die with the process —
  /// so only the search parameters survive; `searching` records that a
  /// search was in progress, and the owner must call begin() again after
  /// restore() to resume it from a fresh probe round.
  struct Snapshot {
    std::uint8_t mode = 0;
    ProcessId forbidden = kNoProcess;
    int retries = 0;
    bool searching = false;
  };

  Snapshot snapshot() const;
  /// Lands in kIdle with the recorded mode/forbidden/retries; see Snapshot.
  void restore(const Snapshot& snap);

 private:
  struct Ack {
    ProcessId from = kNoProcess;
    bool attached = false;
    std::vector<ProcessId> root_path;
  };

  void start_probe_round();
  void on_probe_window_expired();
  void retry();
  void exhausted();

  ProcessId self_;
  ReattachConfig config_;
  Hooks hooks_;
  State state_ = State::kIdle;
  Mode mode_ = Mode::kOrphan;
  ProcessId forbidden_ = kNoProcess;
  int retries_ = 0;
  bool awaiting_window_ = false;
  bool awaiting_retry_ = false;
  std::vector<Ack> acks_;
  ProcessId pending_parent_ = kNoProcess;
};

}  // namespace hpd::ft
