// Heartbeat-based failure detection between spanning-tree neighbours
// (paper, Section III-F: "each process in the spanning tree sends heartbeat
// messages to its parent and children").
//
// Beyond liveness, heartbeats piggyback the sender's root path and
// attachment state, giving every node a (slightly stale) local view of its
// own depth and ancestry — exactly what the reattachment protocol needs to
// pick cycle-free adoption candidates.
//
// Pure state machine: all I/O through hooks; the runner wires it to the
// simulated network and to a periodic timer.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "common/types.hpp"
#include "proto/messages.hpp"

namespace hpd::ft {

struct HeartbeatConfig {
  SimTime period = 1.0;
  /// A neighbour is declared dead after `period * timeout_multiplier` of
  /// silence. Keep above the maximum channel delay / period ratio to avoid
  /// false positives.
  double timeout_multiplier = 3.5;
};

class HeartbeatAgent {
 public:
  struct Hooks {
    std::function<void(ProcessId dst, const proto::HeartbeatPayload&)> send;
    /// A tracked neighbour missed its deadline. The agent has already
    /// stopped tracking it when this fires.
    std::function<void(ProcessId neighbor, bool was_parent)> on_failed;
    std::function<SimTime()> now;
  };

  HeartbeatAgent(ProcessId self, const HeartbeatConfig& config, Hooks hooks);

  // ---- Tree wiring --------------------------------------------------------

  /// Initialize as root (attached, path = [self]) or as a child of `parent`
  /// with the given initial root path (known at deployment time).
  void init_as_root();
  void init_with_parent(ProcessId parent, std::vector<ProcessId> root_path);

  void add_child(ProcessId child);
  void remove_child(ProcessId child);
  void set_parent(ProcessId parent);  ///< after a reattachment
  void clear_parent();                ///< orphaned: detached until reattached
  void become_root();

  /// Crash-recovery reset: forget every neighbour; detached, parentless,
  /// childless (the node rejoins as a fresh leaf).
  void reset();

  ProcessId parent() const { return parent_; }
  bool is_root() const { return is_root_; }
  bool attached() const { return attached_; }
  /// Current believed path self → root (empty while detached).
  const std::vector<ProcessId>& root_path() const { return root_path_; }
  int depth() const {
    return root_path_.empty() ? -1 : static_cast<int>(root_path_.size()) - 1;
  }

  // ---- Events -------------------------------------------------------------

  /// Periodic tick (period = config.period): emits beats, checks deadlines.
  void on_tick();

  void on_heartbeat(ProcessId from, const proto::HeartbeatPayload& payload);

  /// The payload this node currently advertises.
  proto::HeartbeatPayload make_payload() const;

  // ---- Checkpoint surface (durability) ------------------------------------

  /// Image of the tree-wiring state. Liveness deadlines (`last_heard_`) are
  /// deliberately NOT captured: wall-clock readings are meaningless after a
  /// restart, so restore() re-arms every tracked neighbour at restore-time
  /// now() — a full grace period before anyone can be declared dead.
  struct Snapshot {
    ProcessId parent = kNoProcess;
    bool is_root = false;
    bool attached = false;
    std::vector<ProcessId> root_path;
    std::vector<ProcessId> children;
  };

  Snapshot snapshot() const;
  void restore(const Snapshot& snap);

 private:
  void track(ProcessId neighbor);
  void check_deadlines();

  ProcessId self_;
  HeartbeatConfig config_;
  Hooks hooks_;

  /// Consecutive looping parent beats before the cycle is broken.
  static constexpr int kLoopBreakStreak = 3;

  ProcessId parent_ = kNoProcess;
  bool is_root_ = false;
  bool attached_ = false;
  int loop_streak_ = 0;
  std::vector<ProcessId> root_path_;
  std::vector<ProcessId> children_;
  std::map<ProcessId, SimTime> last_heard_;
};

}  // namespace hpd::ft
