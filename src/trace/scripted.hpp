// Fully scripted workloads: an explicit per-process action timetable.
// Used to reproduce the paper's exact scenarios (Figures 2 and 3) and for
// deterministic unit tests; combine with DelayModel::fixed for precise
// causal structure.
#pragma once

#include <vector>

#include "trace/behavior.hpp"

namespace hpd::trace {

struct ScriptAction {
  enum class Kind { kInternal, kSetPredicate, kSend };

  SimTime time = 0.0;
  Kind kind = Kind::kInternal;
  bool value = false;          ///< for kSetPredicate
  ProcessId dst = kNoProcess;  ///< for kSend
};

inline ScriptAction at_internal(SimTime t) {
  return ScriptAction{t, ScriptAction::Kind::kInternal, false, kNoProcess};
}
inline ScriptAction at_predicate(SimTime t, bool value) {
  return ScriptAction{t, ScriptAction::Kind::kSetPredicate, value, kNoProcess};
}
inline ScriptAction at_send(SimTime t, ProcessId dst) {
  return ScriptAction{t, ScriptAction::Kind::kSend, false, dst};
}

class ScriptedBehavior final : public AppBehavior {
 public:
  explicit ScriptedBehavior(std::vector<ScriptAction> actions)
      : actions_(std::move(actions)) {}

  void on_start(AppContext& ctx) override;
  void on_timer(AppContext& ctx, int tag) override;

 private:
  std::vector<ScriptAction> actions_;
};

}  // namespace hpd::trace
