// Recorded distributed executions (E, ≺): per-process event sequences with
// vector timestamps and predicate truth, plus the completed local intervals.
// Consumed by the offline ground-truth checkers and by tests.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"
#include "interval/interval.hpp"
#include "vc/vector_clock.hpp"

namespace hpd::trace {

enum class EventKind {
  kInternal,
  kSend,
  kReceive,
};

const char* to_string(EventKind k);

struct EventRecord {
  EventKind kind = EventKind::kInternal;
  SimTime time = 0.0;
  VectorClock vc;               ///< timestamp after executing the event
  bool predicate_after = false; ///< local predicate value after the event
  ProcessId peer = kNoProcess;  ///< counterpart for send / receive
};

struct ProcessTrace {
  bool initial_predicate = false;
  std::vector<EventRecord> events;
  std::vector<Interval> intervals;  ///< completed truth intervals, in order
};

struct ExecutionRecord {
  std::vector<ProcessTrace> procs;

  std::size_t num_processes() const { return procs.size(); }
  std::size_t total_events() const;
  std::size_t total_intervals() const;
  /// The paper's p: max intervals at any one process.
  std::size_t max_intervals_per_process() const;
};

}  // namespace hpd::trace
