#include "trace/validate.hpp"

#include <sstream>

namespace hpd::trace {

namespace {

void add_issue(std::vector<ValidationIssue>& out, ProcessId process,
               std::size_t index, std::string message) {
  out.push_back(ValidationIssue{process, index, std::move(message)});
}

}  // namespace

std::vector<ValidationIssue> validate_execution(const ExecutionRecord& exec) {
  std::vector<ValidationIssue> issues;
  const std::size_t n = exec.num_processes();

  for (std::size_t i = 0; i < n; ++i) {
    const auto& proc = exec.procs[i];
    const auto pid = static_cast<ProcessId>(i);
    VectorClock prev(n);
    for (std::size_t e = 0; e < proc.events.size(); ++e) {
      const auto& ev = proc.events[e];
      if (ev.vc.size() != n) {
        add_issue(issues, pid, e, "event clock width mismatch");
        continue;
      }
      if (ev.vc[i] != static_cast<ClockValue>(e + 1)) {
        std::ostringstream os;
        os << "own clock component is " << ev.vc[i] << ", expected "
           << (e + 1);
        add_issue(issues, pid, e, os.str());
      }
      for (std::size_t j = 0; j < n; ++j) {
        if (j != i && ev.vc[j] < prev[j]) {
          add_issue(issues, pid, e, "foreign clock component went backwards");
        }
        if (j != i && ev.vc[j] > exec.procs[j].events.size()) {
          add_issue(issues, pid, e,
                    "not causally closed: event knows more of process " +
                        std::to_string(j) + " than the record contains");
        }
      }
      prev = ev.vc;
    }

    for (std::size_t k = 0; k < proc.intervals.size(); ++k) {
      const auto& x = proc.intervals[k];
      if (x.origin != pid) {
        add_issue(issues, pid, k, "interval origin mismatch");
      }
      if (x.seq != k + 1) {
        add_issue(issues, pid, k, "interval sequence numbers not 1,2,...");
      }
      if (x.lo.size() != n || x.hi.size() != n) {
        add_issue(issues, pid, k, "interval clock width mismatch");
        continue;
      }
      for (std::size_t j = 0; j < n; ++j) {
        if (x.lo[j] > x.hi[j]) {
          add_issue(issues, pid, k, "interval lo exceeds hi");
          break;
        }
      }
      if (x.hi[i] > proc.events.size()) {
        add_issue(issues, pid, k, "interval extends past the event record");
      }
      if (k > 0 && proc.intervals[k - 1].hi[i] >= x.lo[i]) {
        add_issue(issues, pid, k, "intervals overlap on their own process");
      }
    }
  }
  return issues;
}

bool execution_valid(const ExecutionRecord& exec) {
  return validate_execution(exec).empty();
}

}  // namespace hpd::trace
