#include "trace/scripted.hpp"

#include "common/assert.hpp"

namespace hpd::trace {

void ScriptedBehavior::on_start(AppContext& ctx) {
  for (std::size_t i = 0; i < actions_.size(); ++i) {
    HPD_REQUIRE(actions_[i].time >= ctx.now(),
                "ScriptedBehavior: action scheduled in the past");
    ctx.set_timer(static_cast<int>(i), actions_[i].time - ctx.now());
  }
}

void ScriptedBehavior::on_timer(AppContext& ctx, int tag) {
  const auto i = static_cast<std::size_t>(tag);
  HPD_REQUIRE(i < actions_.size(), "ScriptedBehavior: bad action index");
  const ScriptAction& act = actions_[i];
  switch (act.kind) {
    case ScriptAction::Kind::kInternal:
      ctx.core->internal_event();
      break;
    case ScriptAction::Kind::kSetPredicate:
      ctx.core->set_predicate(act.value);
      break;
    case ScriptAction::Kind::kSend:
      ctx.send_app(act.dst, 0, 0);
      break;
  }
}

}  // namespace hpd::trace
