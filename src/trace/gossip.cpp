#include "trace/gossip.hpp"

namespace hpd::trace {

namespace {
constexpr int kActTag = 0;
}

void GossipBehavior::on_start(AppContext& ctx) {
  ctx.set_timer(kActTag, (config_.start - ctx.now()) +
                             ctx.rng->exponential(config_.mean_gap));
}

void GossipBehavior::on_timer(AppContext& ctx, int tag) {
  if (tag != kActTag) {
    return;
  }
  const double roll = ctx.rng->uniform01();
  if (roll < config_.p_send) {
    // Send to a random neighbour (topology-constrained if one exists).
    ProcessId dst = kNoProcess;
    if (ctx.topo != nullptr) {
      const auto& nbrs = ctx.topo->neighbors(ctx.self);
      if (!nbrs.empty()) {
        dst = nbrs[ctx.rng->uniform_index(nbrs.size())];
      }
    } else {
      const auto n = static_cast<ProcessId>(ctx.core->clock().size());
      if (n > 1) {
        do {
          dst = static_cast<ProcessId>(ctx.rng->uniform_index(idx(n)));
        } while (dst == ctx.self);
      }
    }
    if (dst != kNoProcess) {
      ctx.send_app(dst, 0, 0);
    } else {
      ctx.core->internal_event();
    }
  } else if (roll < config_.p_send + config_.p_toggle) {
    const bool currently = ctx.core->predicate();
    if (currently) {
      ctx.core->set_predicate(false);
    } else if (ctx.core->intervals_completed() < config_.max_intervals) {
      ctx.core->set_predicate(true);
    } else {
      ctx.core->internal_event();  // interval budget (p) exhausted
    }
  } else {
    ctx.core->internal_event();
  }
  schedule_next(ctx);
}

void GossipBehavior::schedule_next(AppContext& ctx) {
  const SimTime gap = ctx.rng->exponential(config_.mean_gap);
  if (ctx.now() + gap <= config_.horizon) {
    ctx.set_timer(kActTag, gap);
  }
}

}  // namespace hpd::trace
