// Structural validation of recorded executions: catches hand-built or
// file-loaded records that no real run could produce, before they reach
// the offline analyzers (whose answers would otherwise be garbage-in
// garbage-out — e.g. the lattice walker's vacuous-Definitely failure mode
// on causally unclosed inputs).
#pragma once

#include <string>
#include <vector>

#include "trace/execution.hpp"

namespace hpd::trace {

struct ValidationIssue {
  ProcessId process = kNoProcess;
  std::size_t event_index = 0;  ///< or interval index, per message
  std::string message;
};

/// Checks, per process i:
///  * clock width equals the process count, for every event;
///  * own component increments by exactly 1 per event (1, 2, 3, ...);
///  * foreign components are non-decreasing along the event sequence;
///  * causal closure: no event knows more events of process j than the
///    record contains;
///  * intervals: origin == i, sequence numbers 1, 2, ... in order,
///    lo/hi widths match, lo ≤ hi component-wise, and each interval's own
///    components lie within the recorded event range.
std::vector<ValidationIssue> validate_execution(const ExecutionRecord& exec);

/// Convenience: true iff validate_execution finds nothing.
bool execution_valid(const ExecutionRecord& exec);

}  // namespace hpd::trace
