// The "random gossip" workload: an unstructured execution with random
// internal events, random neighbour-to-neighbour messages, and random
// local-predicate toggles. Produces irregular interval patterns — mostly
// eliminations with occasional solutions — which is what the property tests
// want for exercising the queue machinery from every angle.
#pragma once

#include "trace/behavior.hpp"

namespace hpd::trace {

struct GossipConfig {
  SimTime start = 0.0;
  SimTime horizon = 1000.0;     ///< stop scheduling actions after this time
  SimTime mean_gap = 5.0;       ///< exponential gap between actions
  double p_send = 0.4;          ///< action mix: send to a random neighbour
  double p_toggle = 0.3;        ///< action mix: toggle the local predicate
                                ///< (remaining mass: internal event)
  std::size_t max_intervals = 20;  ///< the paper's p, per process
};

class GossipBehavior final : public AppBehavior {
 public:
  explicit GossipBehavior(const GossipConfig& config) : config_(config) {}

  void on_start(AppContext& ctx) override;
  void on_timer(AppContext& ctx, int tag) override;

 private:
  void schedule_next(AppContext& ctx);

  GossipConfig config_;
};

}  // namespace hpd::trace
