#include "trace/pulse.hpp"

#include "common/assert.hpp"

namespace hpd::trace {

void PulseBehavior::on_start(AppContext& ctx) {
  for (SeqNum r = 0; r < config_.rounds; ++r) {
    const SimTime when = config_.start +
                         static_cast<SimTime>(r) * config_.period +
                         ctx.rng->uniform_real(0.0, config_.jitter);
    ctx.set_timer(static_cast<int>(r), when - ctx.now());
  }
}

void PulseBehavior::on_timer(AppContext& ctx, int tag) {
  if (static_cast<SeqNum>(tag) >= config_.rounds) {
    // Watchdog: the round's DOWN never arrived (a relay died, the wave
    // stalled). Lower the predicate so later rounds are not poisoned by a
    // truth period glued across rounds.
    const auto wd_round = static_cast<SeqNum>(tag) - config_.rounds;
    RoundState& st = rounds_[wd_round];
    if (st.participated && !st.down_handled && ctx.core->predicate()) {
      ctx.core->set_predicate(false);
      st.down_handled = true;
    }
    return;
  }
  const auto round = static_cast<SeqNum>(tag);
  RoundState& st = rounds_[round];
  if (st.timer_fired) {
    return;
  }
  // A round firing more than a period after its nominal time is stale —
  // this happens when a crashed node revives and re-arms its timers: the
  // rounds that elapsed while it was dead are over, their waves gone.
  const SimTime nominal =
      config_.start + static_cast<SimTime>(round) * config_.period;
  if (ctx.now() > nominal + config_.period) {
    st.timer_fired = true;
    st.down_handled = true;
    return;
  }
  st.timer_fired = true;
  // Join the round only if the predicate is currently down; a lingering
  // previous interval (possible when rounds overlap under extreme delays)
  // would otherwise be glued to this round's interval.
  if (!ctx.core->predicate() && ctx.rng->bernoulli(config_.participation)) {
    st.participated = true;
    ctx.core->set_predicate(true);
    // Arm the stall watchdog one period out.
    ctx.set_timer(static_cast<int>(config_.rounds + round), config_.period);
  }
  maybe_advance(ctx, round);
}

void PulseBehavior::on_app_message(AppContext& ctx, ProcessId from,
                                   int subtype, SeqNum round) {
  (void)from;
  if (subtype == kUp) {
    RoundState& st = rounds_[round];
    ++st.ups_received;
    maybe_advance(ctx, round);
  } else if (subtype == kDown) {
    handle_down(ctx, round);
  }
}

void PulseBehavior::on_tree_changed(AppContext& ctx) {
  // A child may have vanished (its UP will never come) or the node may have
  // become the root / a leaf; re-evaluate every pending round.
  for (auto& [round, st] : rounds_) {
    if (st.timer_fired && !st.sent_up && !st.down_handled) {
      maybe_advance(ctx, round);
    }
  }
}

void PulseBehavior::maybe_advance(AppContext& ctx, SeqNum round) {
  RoundState& st = rounds_[round];
  if (!st.timer_fired || st.sent_up || st.down_handled) {
    return;
  }
  const std::vector<ProcessId> kids = ctx.children();
  if (st.ups_received < kids.size()) {
    return;  // convergecast incomplete
  }
  st.sent_up = true;
  const ProcessId parent = ctx.parent();
  if (parent == kNoProcess) {
    // Root: the gather is complete — broadcast DOWN.
    handle_down(ctx, round);
  } else {
    ctx.send_app(parent, kUp, round);
  }
}

void PulseBehavior::handle_down(AppContext& ctx, SeqNum round) {
  RoundState& st = rounds_[round];
  if (st.down_handled) {
    return;
  }
  st.down_handled = true;
  for (const ProcessId child : ctx.children()) {
    ctx.send_app(child, kDown, round);
  }
  if (st.participated && ctx.core->predicate()) {
    ctx.core->set_predicate(false);
  }
}

}  // namespace hpd::trace
