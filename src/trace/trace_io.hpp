// Text serialization of recorded executions.
//
// A simple line-oriented format, stable enough to diff and script around:
//
//   execution <n-processes>
//   proc <id> init <0|1>
//   e <kind> <time> <peer> <pred-after> <vc components...>
//   i <seq> <lo components...> | <hi components...>
//   end
//
// Round-trips exactly (see trace_io_test). Used by tooling (hpd_sim can
// dump what it saw) and by humans debugging a detection question offline:
// dump the execution, replay it, poke at it.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/execution.hpp"

namespace hpd::trace {

/// Write `exec` to `os`. Provenance (test instrumentation) is not stored.
void write_execution(std::ostream& os, const ExecutionRecord& exec);

/// Parse an execution written by write_execution.
/// Throws hpd::AssertionError on malformed input.
ExecutionRecord read_execution(std::istream& is);

/// Convenience string forms.
std::string execution_to_string(const ExecutionRecord& exec);
ExecutionRecord execution_from_string(const std::string& text);

}  // namespace hpd::trace
