// Local variables + a predicate function over them — the user-facing way
// to define the φ_i of a conjunctive predicate (the paper's running
// example is "x_i > 20 ∧ y_j < 45": each conjunct is a function of one
// process's local variables).
//
// Every variable update is a local event (it advances the vector clock);
// after each update the predicate function is re-evaluated and the
// underlying AppCore's truth state — and hence interval tracking — follows
// automatically.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "trace/app_core.hpp"

namespace hpd::trace {

class LocalState {
 public:
  using PredicateFn = std::function<bool(const LocalState&)>;

  explicit LocalState(AppCore& core) : core_(&core) {}

  /// Install the local predicate. Evaluated after every update; installing
  /// it counts as an update (the initial truth value takes effect now).
  void set_predicate_fn(PredicateFn fn);

  /// Update a variable (creates a local event and re-evaluates φ).
  void set(const std::string& name, double value);

  /// Read a variable (0.0 if never set).
  double get(const std::string& name) const;

  bool has(const std::string& name) const { return vars_.count(name) != 0; }
  std::size_t size() const { return vars_.size(); }

 private:
  void reevaluate();

  AppCore* core_;
  std::map<std::string, double> vars_;
  PredicateFn fn_;
};

}  // namespace hpd::trace
