// The application-layer core of one simulated process: maintains the vector
// clock by the paper's rules, tracks the local predicate, detects interval
// boundaries, and (optionally) records the execution for offline analysis.
//
// Interval semantics: the local predicate changes value *through events*
// (a state change is itself an internal event). An interval starts at the
// event that makes the predicate true — min(x) is that event's timestamp —
// and every subsequent event executed while the predicate is still true
// advances max(x). The event that makes the predicate false is not part of
// the interval.
#pragma once

#include <functional>

#include "common/types.hpp"
#include "interval/interval.hpp"
#include "trace/execution.hpp"
#include "vc/vector_clock.hpp"

namespace hpd::trace {

class AppCore {
 public:
  /// `on_interval` is invoked with each completed truth interval (base
  /// intervals: origin == self, seq = 1, 2, ...).
  AppCore(ProcessId self, std::size_t n,
          std::function<void(const Interval&)> on_interval);

  ProcessId self() const { return self_; }
  const VectorClock& clock() const { return clock_; }
  bool predicate() const { return predicate_; }
  SeqNum intervals_completed() const { return next_seq_ - 1; }

  /// Enable provenance tagging of emitted intervals (test instrumentation).
  void set_track_provenance(bool on) { track_provenance_ = on; }

  /// Install a time source (interval completion stamps, event times).
  void set_time_source(std::function<SimTime()> now) { now_ = std::move(now); }

  /// Enable execution recording; `now` supplies event timestamps.
  void enable_recording(std::function<SimTime()> now);
  const ProcessTrace& recorded() const { return trace_; }

  // ---- Events -------------------------------------------------------------

  /// Internal event that does not change the predicate.
  void internal_event();

  /// Internal event that sets the predicate to `value`. Setting an already
  /// equal value is still an event (the process "re-evaluates" its state).
  void set_predicate(bool value);

  /// Send event: ticks the clock and returns the timestamp to piggyback.
  VectorClock prepare_send(ProcessId dst);

  /// Receive event: merge the piggybacked timestamp, then tick (paper rule 3).
  void receive(ProcessId src, const VectorClock& stamp);

  /// Close a still-open interval at the end of the run, so detectors see it.
  /// (Equivalent to the environment falsifying the predicate at shutdown.)
  void finalize();

  /// Crash-recovery support: drop a truth period that was open when the
  /// process died — it never completed and must not be reported. The
  /// predicate restarts false; the vector clock is retained (stable
  /// storage), keeping post-recovery events causally after pre-crash ones.
  void abandon_open_interval();

 private:
  /// Common post-event bookkeeping: record, extend / close intervals.
  void after_event(EventKind kind, ProcessId peer, bool predicate_before);

  void emit_interval();

  ProcessId self_;
  VectorClock clock_;
  bool predicate_ = false;
  bool track_provenance_ = false;

  // Open-interval state.
  bool in_interval_ = false;
  VectorClock interval_lo_;
  VectorClock interval_hi_;
  SeqNum next_seq_ = 1;

  std::function<void(const Interval&)> on_interval_;

  // Optional recording.
  bool recording_ = false;
  std::function<SimTime()> now_;
  ProcessTrace trace_;
};

}  // namespace hpd::trace
