#include "trace/app_core.hpp"

#include <utility>

#include "common/assert.hpp"

namespace hpd::trace {

AppCore::AppCore(ProcessId self, std::size_t n,
                 std::function<void(const Interval&)> on_interval)
    : self_(self), clock_(n), on_interval_(std::move(on_interval)) {
  HPD_REQUIRE(self >= 0 && idx(self) < n, "AppCore: bad self id");
}

void AppCore::enable_recording(std::function<SimTime()> now) {
  recording_ = true;
  now_ = std::move(now);
}

void AppCore::internal_event() {
  const bool before = predicate_;
  clock_.tick(self_);
  after_event(EventKind::kInternal, kNoProcess, before);
}

void AppCore::set_predicate(bool value) {
  const bool before = predicate_;
  clock_.tick(self_);
  predicate_ = value;
  after_event(EventKind::kInternal, kNoProcess, before);
}

VectorClock AppCore::prepare_send(ProcessId dst) {
  const bool before = predicate_;
  clock_.tick(self_);
  after_event(EventKind::kSend, dst, before);
  return clock_;
}

void AppCore::receive(ProcessId src, const VectorClock& stamp) {
  const bool before = predicate_;
  clock_.merge(stamp);
  clock_.tick(self_);
  after_event(EventKind::kReceive, src, before);
}

void AppCore::abandon_open_interval() {
  in_interval_ = false;
  predicate_ = false;
}

void AppCore::finalize() {
  if (in_interval_) {
    // Lower the predicate through a real event so the recorded execution is
    // consistent with the emitted interval: detectors only ever see
    // *completed* intervals, and the ground-truth lattice walk must agree
    // (an interval left open to the final cut would make the final global
    // state satisfy Φ on paths no online detector can observe).
    set_predicate(false);
  }
}

void AppCore::after_event(EventKind kind, ProcessId peer,
                          bool predicate_before) {
  if (recording_) {
    EventRecord rec;
    rec.kind = kind;
    rec.time = now_ ? now_() : 0.0;
    rec.vc = clock_;
    rec.predicate_after = predicate_;
    rec.peer = peer;
    trace_.events.push_back(std::move(rec));
  }
  if (!predicate_before && predicate_) {
    // The event that made the predicate true opens the interval.
    in_interval_ = true;
    interval_lo_ = clock_;
    interval_hi_ = clock_;
  } else if (predicate_before && predicate_) {
    if (in_interval_) {
      interval_hi_ = clock_;  // still true: extend max(x)
    }
  } else if (predicate_before && !predicate_) {
    // The falsifying event is not part of the interval.
    if (in_interval_) {
      emit_interval();
      in_interval_ = false;
    }
  }
}

void AppCore::emit_interval() {
  Interval x;
  x.lo = interval_lo_;
  x.hi = interval_hi_;
  x.origin = self_;
  x.seq = next_seq_++;
  x.completed_at = now_ ? now_() : 0.0;
  if (track_provenance_) {
    attach_base_provenance(x);
  }
  if (recording_) {
    trace_.intervals.push_back(x);
  }
  if (on_interval_) {
    on_interval_(x);
  }
}

}  // namespace hpd::trace
