#include "trace/sensor.hpp"

#include <cmath>

namespace hpd::trace {

void SensorBehavior::on_start(AppContext& ctx) {
  state_ = std::make_unique<LocalState>(*ctx.core);
  const double threshold = config_.threshold;
  state_->set_predicate_fn([threshold](const LocalState& s) {
    return s.get("reading") >= threshold;
  });
  // Start sampling and syncing with per-node phase jitter.
  ctx.set_timer(kSampleTag, (config_.start - ctx.now()) +
                                ctx.rng->uniform_real(0.0, 1.0));
  ctx.set_timer(kSyncTag, (config_.start - ctx.now()) +
                              ctx.rng->uniform_real(0.0, config_.sync_period));
}

double SensorBehavior::sample_signal(AppContext& ctx) const {
  // Shared slow wave in [0, 1] (same phase on every node: a field-wide
  // phenomenon) plus per-node noise.
  const double t = ctx.now();
  const double wave =
      0.5 * (1.0 + std::sin(2.0 * 3.14159265358979 * t / config_.wave_period));
  const double noise = ctx.rng->uniform_real(-config_.noise, config_.noise);
  return wave + noise;
}

void SensorBehavior::on_timer(AppContext& ctx, int tag) {
  if (ctx.now() > config_.horizon) {
    return;  // mission over; stop rescheduling
  }
  if (tag == kSampleTag) {
    state_->set("reading", sample_signal(ctx));
    ctx.set_timer(kSampleTag, config_.sample_period);
  } else if (tag == kSyncTag) {
    // Light state-sync chatter to tree neighbours: these messages carry the
    // vector clocks that let threshold episodes causally cross.
    const ProcessId parent = ctx.parent();
    if (parent != kNoProcess) {
      ctx.send_app(parent, 0, 0);
    }
    for (const ProcessId child : ctx.children()) {
      ctx.send_app(child, 0, 0);
    }
    ctx.set_timer(kSyncTag, config_.sync_period);
  }
}

}  // namespace hpd::trace
