// The "pulse rounds" workload: a convergecast/broadcast wave per round that
// manufactures the causal crossings Definitely(Φ) needs.
//
// Round r proceeds as follows. At the round's start each process decides
// (independently, with probability `participation`) whether to take part;
// participants raise their local predicate. Every process — participant or
// not — joins the wave: leaves send UP to their parent; an internal node
// sends UP once all children's UPs arrived; when the root's gather
// completes it broadcasts DOWN; every process forwards DOWN to its children
// and participants then lower their predicate.
//
// Because each participant's interval contains its UP send (after min(x))
// and its DOWN receive (before max(x)), and the root's gather/broadcast
// causally separates all UPs from all DOWNs, the participants of one round
// form a mutually overlapping interval set: min(x_i) ≺ up_i ≺ gather ≺
// down_j ≺ max(x_j) for all participants i, j. Intervals from different
// rounds never overlap (causality only flows forward), so a subtree
// produces a solution exactly in rounds where *all* its processes
// participate — `participation` therefore directly tunes the paper's α.
#pragma once

#include <unordered_map>

#include "trace/behavior.hpp"

namespace hpd::trace {

struct PulseConfig {
  SeqNum rounds = 10;          ///< number of pulses
  SimTime start = 1.0;         ///< time of round 0
  SimTime period = 100.0;      ///< distance between rounds (>> wave latency)
  double participation = 1.0;  ///< probability a process joins a round
  double jitter = 1.0;         ///< uniform start jitter per process
};

class PulseBehavior final : public AppBehavior {
 public:
  explicit PulseBehavior(const PulseConfig& config) : config_(config) {}

  void on_start(AppContext& ctx) override;
  void on_app_message(AppContext& ctx, ProcessId from, int subtype,
                      SeqNum round) override;
  void on_timer(AppContext& ctx, int tag) override;
  void on_tree_changed(AppContext& ctx) override;

  /// Message subtypes.
  static constexpr int kUp = 1;
  static constexpr int kDown = 2;

 private:
  struct RoundState {
    std::size_t ups_received = 0;
    bool timer_fired = false;
    bool participated = false;
    bool sent_up = false;
    bool down_handled = false;
  };

  /// Send UP / broadcast DOWN if the round's preconditions are now met.
  void maybe_advance(AppContext& ctx, SeqNum round);
  void handle_down(AppContext& ctx, SeqNum round);

  PulseConfig config_;
  std::unordered_map<SeqNum, RoundState> rounds_;
};

}  // namespace hpd::trace
