#include "trace/local_state.hpp"

namespace hpd::trace {

void LocalState::set_predicate_fn(PredicateFn fn) {
  fn_ = std::move(fn);
  reevaluate();
}

void LocalState::set(const std::string& name, double value) {
  vars_[name] = value;
  reevaluate();
}

double LocalState::get(const std::string& name) const {
  auto it = vars_.find(name);
  return it == vars_.end() ? 0.0 : it->second;
}

void LocalState::reevaluate() {
  const bool now_true = fn_ ? fn_(*this) : false;
  // The state change is an event either way: set_predicate records the
  // (possibly unchanged) truth value and ticks the clock, matching the
  // convention that a process re-evaluating its state is an internal event.
  core_->set_predicate(now_true);
}

}  // namespace hpd::trace
