#include "trace/execution.hpp"

#include <algorithm>

namespace hpd::trace {

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kInternal:
      return "internal";
    case EventKind::kSend:
      return "send";
    case EventKind::kReceive:
      return "receive";
  }
  return "?";
}

std::size_t ExecutionRecord::total_events() const {
  std::size_t total = 0;
  for (const auto& p : procs) {
    total += p.events.size();
  }
  return total;
}

std::size_t ExecutionRecord::total_intervals() const {
  std::size_t total = 0;
  for (const auto& p : procs) {
    total += p.intervals.size();
  }
  return total;
}

std::size_t ExecutionRecord::max_intervals_per_process() const {
  std::size_t best = 0;
  for (const auto& p : procs) {
    best = std::max(best, p.intervals.size());
  }
  return best;
}

}  // namespace hpd::trace
