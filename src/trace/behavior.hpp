// Application workload behaviours: what the monitored distributed program
// itself does (its events, messages, and local-predicate changes).
//
// Behaviours are reactive state machines driven by the runner: timers and
// application messages arrive through the hooks below. The runner performs
// the vector-clock plumbing (AppCore::receive has already run when
// on_app_message is invoked; send_app stamps outgoing messages).
#pragma once

#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/topology.hpp"
#include "trace/app_core.hpp"

namespace hpd::trace {

struct AppContext {
  ProcessId self = kNoProcess;
  AppCore* core = nullptr;
  Rng* rng = nullptr;
  const net::Topology* topo = nullptr;  ///< may be null (complete network)

  /// Current spanning-tree neighbourhood (changes under failures/repair).
  std::function<ProcessId()> parent;
  std::function<std::vector<ProcessId>()> children;

  /// Send an application message (the runner ticks the clock, stamps the
  /// current vector time, and counts the message as app traffic).
  std::function<void(ProcessId dst, int subtype, SeqNum round)> send_app;

  /// One-shot behaviour timer; fires on_timer(tag) after `delay`.
  std::function<void(int tag, SimTime delay)> set_timer;

  std::function<SimTime()> now;
};

class AppBehavior {
 public:
  virtual ~AppBehavior() = default;

  virtual void on_start(AppContext& ctx) { (void)ctx; }
  virtual void on_app_message(AppContext& ctx, ProcessId from, int subtype,
                              SeqNum round) {
    (void)ctx;
    (void)from;
    (void)subtype;
    (void)round;
  }
  virtual void on_timer(AppContext& ctx, int tag) {
    (void)ctx;
    (void)tag;
  }
  /// The node's tree neighbourhood changed (failure repair). Behaviours
  /// waiting on children (e.g. the pulse convergecast) should re-evaluate.
  virtual void on_tree_changed(AppContext& ctx) { (void)ctx; }
};

}  // namespace hpd::trace
