#include "trace/trace_io.hpp"

#include <ostream>
#include <sstream>

#include "common/assert.hpp"

namespace hpd::trace {

namespace {

const char* kind_code(EventKind k) {
  switch (k) {
    case EventKind::kInternal:
      return "int";
    case EventKind::kSend:
      return "snd";
    case EventKind::kReceive:
      return "rcv";
  }
  return "?";
}

EventKind kind_from(const std::string& s) {
  if (s == "int") {
    return EventKind::kInternal;
  }
  if (s == "snd") {
    return EventKind::kSend;
  }
  if (s == "rcv") {
    return EventKind::kReceive;
  }
  HPD_REQUIRE(false, "trace_io: bad event kind '" + s + "'");
  return EventKind::kInternal;
}

void write_clock(std::ostream& os, const VectorClock& vc) {
  for (std::size_t i = 0; i < vc.size(); ++i) {
    os << (i == 0 ? "" : " ") << vc[i];
  }
}

VectorClock read_clock(std::istringstream& is, std::size_t n) {
  VectorClock vc(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t v = 0;
    HPD_REQUIRE(static_cast<bool>(is >> v), "trace_io: truncated clock");
    HPD_REQUIRE(v <= UINT32_MAX, "trace_io: clock component out of range");
    vc[i] = static_cast<ClockValue>(v);
  }
  return vc;
}

}  // namespace

void write_execution(std::ostream& os, const ExecutionRecord& exec) {
  const std::size_t n = exec.num_processes();
  os << "execution " << n << "\n";
  for (std::size_t p = 0; p < n; ++p) {
    const ProcessTrace& tr = exec.procs[p];
    os << "proc " << p << " init " << (tr.initial_predicate ? 1 : 0) << "\n";
    for (const EventRecord& e : tr.events) {
      os << "e " << kind_code(e.kind) << ' ' << e.time << ' ' << e.peer
         << ' ' << (e.predicate_after ? 1 : 0) << ' ';
      write_clock(os, e.vc);
      os << "\n";
    }
    for (const Interval& x : tr.intervals) {
      os << "i " << x.seq << ' ';
      write_clock(os, x.lo);
      os << " | ";
      write_clock(os, x.hi);
      os << "\n";
    }
  }
  os << "end\n";
}

ExecutionRecord read_execution(std::istream& is) {
  std::string line;
  HPD_REQUIRE(static_cast<bool>(std::getline(is, line)),
              "trace_io: empty input");
  std::istringstream head(line);
  std::string tag;
  std::size_t n = 0;
  HPD_REQUIRE(static_cast<bool>(head >> tag >> n) && tag == "execution",
              "trace_io: missing execution header");
  ExecutionRecord exec;
  exec.procs.resize(n);
  ProcessTrace* current = nullptr;
  ProcessId current_id = kNoProcess;
  bool ended = false;
  while (std::getline(is, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream ls(line);
    ls >> tag;
    if (tag == "end") {
      ended = true;
      break;
    }
    if (tag == "proc") {
      std::size_t id = 0;
      std::string init_tag;
      int init = 0;
      HPD_REQUIRE(static_cast<bool>(ls >> id >> init_tag >> init) &&
                      init_tag == "init" && id < n,
                  "trace_io: bad proc line");
      current = &exec.procs[id];
      current_id = static_cast<ProcessId>(id);
      current->initial_predicate = init != 0;
      continue;
    }
    HPD_REQUIRE(current != nullptr, "trace_io: record before proc line");
    if (tag == "e") {
      std::string kind;
      EventRecord e;
      int pred = 0;
      std::int64_t peer = 0;
      HPD_REQUIRE(static_cast<bool>(ls >> kind >> e.time >> peer >> pred),
                  "trace_io: bad event line");
      e.kind = kind_from(kind);
      e.peer = static_cast<ProcessId>(peer);
      e.predicate_after = pred != 0;
      e.vc = read_clock(ls, n);
      current->events.push_back(std::move(e));
    } else if (tag == "i") {
      Interval x;
      HPD_REQUIRE(static_cast<bool>(ls >> x.seq), "trace_io: bad interval");
      x.lo = read_clock(ls, n);
      std::string sep;
      HPD_REQUIRE(static_cast<bool>(ls >> sep) && sep == "|",
                  "trace_io: missing interval separator");
      x.hi = read_clock(ls, n);
      x.origin = current_id;
      current->intervals.push_back(std::move(x));
    } else {
      HPD_REQUIRE(false, "trace_io: unknown record '" + tag + "'");
    }
  }
  HPD_REQUIRE(ended, "trace_io: missing end marker");
  return exec;
}

std::string execution_to_string(const ExecutionRecord& exec) {
  std::ostringstream os;
  write_execution(os, exec);
  return os.str();
}

ExecutionRecord execution_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_execution(is);
}

}  // namespace hpd::trace
