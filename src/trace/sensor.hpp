// A sensor-field workload over real local variables: each node samples a
// correlated environmental signal (a shared slow wave plus per-node noise)
// into its LocalState; the local predicate is a threshold on the reading.
// Periodic sync messages along the tree create the causal crossings that
// make simultaneous-threshold episodes detectable as Definitely(Φ).
#pragma once

#include <memory>

#include "trace/behavior.hpp"
#include "trace/local_state.hpp"

namespace hpd::trace {

struct SensorConfig {
  SimTime start = 1.0;
  SimTime horizon = 1000.0;      ///< stop sampling after this time
  SimTime sample_period = 5.0;   ///< reading cadence
  SimTime sync_period = 10.0;    ///< tree-neighbour sync message cadence
  double threshold = 0.75;       ///< φ_i: reading >= threshold
  double wave_period = 250.0;    ///< shared environmental wave
  double noise = 0.08;           ///< per-sample uniform noise amplitude
};

class SensorBehavior final : public AppBehavior {
 public:
  explicit SensorBehavior(const SensorConfig& config) : config_(config) {}

  void on_start(AppContext& ctx) override;
  void on_timer(AppContext& ctx, int tag) override;

  /// Latest reading (for examples that want to display it).
  double reading() const { return state_ ? state_->get("reading") : 0.0; }

 private:
  static constexpr int kSampleTag = 0;
  static constexpr int kSyncTag = 1;

  double sample_signal(AppContext& ctx) const;

  SensorConfig config_;
  std::unique_ptr<LocalState> state_;
};

}  // namespace hpd::trace
