// Threshold predicates over real local variables — the paper's
// "x_i > 20 ∧ y_j < 45" style of conjunctive predicate, end to end.
//
// Forty sensors sample a shared environmental wave (think region-wide heat)
// plus local noise. Each sensor's local predicate is a threshold on its own
// reading; the monitored global predicate is "EVERY sensor reads hot at
// once" — and the system must raise an alarm for every such episode
// (repeated Definitely detection), not just the first.
//
// Build & run:  ./build/examples/threshold_sensors
#include <iostream>

#include "proto/messages.hpp"
#include "runner/monitor.hpp"
#include "trace/sensor.hpp"

using namespace hpd;

int main() {
  Rng layout_rng(99);
  MonitorConfig cfg;
  cfg.topology = net::Topology::random_geometric(40, 0.26, layout_rng);
  cfg.tree = net::SpanningTree::bfs_tree(cfg.topology, 0);
  cfg.horizon = 2100.0;
  cfg.drain = 150.0;
  cfg.seed = 12;

  Monitor mon(cfg);
  trace::SensorConfig sensor;
  sensor.horizon = 2000.0;
  sensor.wave_period = 400.0;  // five hot episodes
  sensor.threshold = 0.78;
  sensor.noise = 0.06;
  sensor.sample_period = 4.0;
  sensor.sync_period = 8.0;
  mon.set_behavior_factory([sensor](ProcessId) {
    return std::make_unique<trace::SensorBehavior>(sensor);
  });

  mon.on_global_occurrence([](const detect::OccurrenceRecord& rec) {
    std::cout << "t=" << rec.time << "  HEAT EPISODE #" << rec.index
              << ": all 40 sensors above threshold simultaneously "
              << "(detection latency " << rec.latency() << ")\n";
  });

  const auto result = mon.run();

  std::cout << "\nEpisodes detected: " << result.global_count
            << " (wave crests in the window: 5; a crest is missed only if\n"
            << " some sensor's noise kept it below threshold throughout)\n"
            << "Interval reports: "
            << result.metrics.msgs_of_type(proto::kReportHier)
            << ", sync messages: "
            << result.metrics.msgs_of_type(proto::kApp)
            << ", worst node stored "
            << result.metrics.max_node_storage_peak() << " intervals.\n";
  return 0;
}
