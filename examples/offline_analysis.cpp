// The offline toolchain, end to end: record a live run, serialize the
// execution, reload it, profile it, and cross-examine the online detections
// against three independent offline references (flat replay, hierarchical
// replay, and — for a trimmed prefix — the brute-force consistent-cut
// lattice). This is the debugging workflow for "why did (or didn't) the
// predicate hold?" questions.
//
// Build & run:  ./build/examples/offline_analysis
#include <iostream>
#include <sstream>

#include "analysis/execution_stats.hpp"
#include "detect/offline/enumerate.hpp"
#include "detect/offline/hier_replay.hpp"
#include "detect/offline/lattice.hpp"
#include "detect/offline/replay.hpp"
#include "runner/experiment.hpp"
#include "trace/gossip.hpp"
#include "trace/trace_io.hpp"

using namespace hpd;

int main() {
  // 1. A live run with recording on.
  runner::ExperimentConfig cfg;
  cfg.topology = net::Topology::grid(2, 3);
  cfg.tree = net::SpanningTree::bfs_tree(cfg.topology, 0);
  trace::GossipConfig g;
  g.horizon = 400.0;
  g.mean_gap = 3.0;
  g.p_send = 0.45;
  g.p_toggle = 0.35;
  g.max_intervals = 10;
  cfg.behavior_factory = [g](ProcessId) {
    return std::make_unique<trace::GossipBehavior>(g);
  };
  cfg.horizon = 420.0;
  cfg.drain = 80.0;
  cfg.seed = 2025;
  cfg.record_execution = true;
  cfg.track_provenance = true;
  const auto result = runner::run_experiment(cfg);
  std::cout << "Live run: " << result.global_count
            << " global detections, "
            << result.metrics.total_detections() << " total.\n\n";

  // 2. Serialize and reload the execution (what hpd_sim --dump-execution
  //    writes; here through a string for a self-contained example).
  const std::string dumped = trace::execution_to_string(result.execution);
  const auto exec = trace::execution_from_string(dumped);
  std::cout << "Execution serialized to " << dumped.size()
            << " bytes and reloaded.\n\n";

  // 3. Profile it.
  analysis::print_stats(std::cout, analysis::compute_stats(exec));

  // 4. Cross-examine against the offline references.
  const auto flat = detect::offline::replay_centralized(exec);
  const auto hier = detect::offline::hier_replay(exec, cfg.tree);
  std::cout << "\nOffline flat replay finds " << flat.size()
            << " global solutions; offline hierarchical replay finds ";
  const auto root_it = hier.solutions.find(cfg.tree.root());
  std::cout << (root_it == hier.solutions.end() ? 0
                                                : root_it->second.size())
            << " at the root (" << hier.total()
            << " across all levels) — both must equal the live count of "
            << result.global_count << ".\n";

  // 5. Brute-force ground truth on a small prefix (the lattice is
  //    exponential; trim each process to its first few events).
  trace::ExecutionRecord prefix = exec;
  const std::size_t n_procs = prefix.procs.size();
  // Truncate at the maximal CONSISTENT cut below 7 events per process —
  // chopping at raw event counts would leave receives whose sends are
  // outside the record (not a valid execution; the lattice walker rejects
  // that).
  std::vector<std::size_t> cut(n_procs, 7);
  for (std::size_t i = 0; i < n_procs; ++i) {
    cut[i] = std::min<std::size_t>(cut[i], prefix.procs[i].events.size());
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t i = 0; i < n_procs; ++i) {
      while (cut[i] > 0) {
        const auto& vc = prefix.procs[i].events[cut[i] - 1].vc;
        bool consistent = true;
        for (std::size_t j = 0; j < n_procs; ++j) {
          consistent = consistent && vc[j] <= cut[j];
        }
        if (consistent) {
          break;
        }
        --cut[i];
        changed = true;
      }
    }
  }
  for (std::size_t i = 0; i < n_procs; ++i) {
    auto& p = prefix.procs[i];
    p.events.resize(cut[i]);
    p.intervals.clear();  // intervals are not needed by the lattice walk
    // Close a truth period left open by the truncation (otherwise the
    // prefix "ends true" and Definitely holds trivially at the final cut —
    // the boundary artifact online detectors never observe).
    if (!p.events.empty() && p.events.back().predicate_after) {
      trace::EventRecord down = p.events.back();
      down.kind = trace::EventKind::kInternal;
      down.predicate_after = false;
      down.vc.tick(static_cast<ProcessId>(i));
      p.events.push_back(std::move(down));
    }
  }
  std::cout << "\nLattice ground truth on a 7-event-per-process prefix: "
            << "Possibly=" << detect::offline::lattice_possibly(prefix)
            << " Definitely=" << detect::offline::lattice_definitely(prefix)
            << " over "
            << detect::offline::count_consistent_cuts(prefix)
            << " consistent cuts.\n";
  return 0;
}
