// Wireless-sensor-network monitoring — the paper's motivating application.
//
// Sixty sensors are scattered on the unit square; radios reach 0.22 units,
// giving a multi-hop topology. A BFS spanning tree rooted at the sink
// (node 0) organizes detection. The monitored condition is a conjunctive
// predicate — "every sensor currently reads above its alert threshold" —
// and the deployment wants an alarm *every time* the condition holds
// across the field (repeated detection), plus per-cluster alarms at the
// internal nodes of the tree (group-level monitoring).
//
// Sensor dynamics are modeled with the pulse workload: periodic field-wide
// phenomena that each sensor registers with probability `participation`
// (a sensor may miss a weak event). Only events registered by every sensor
// of a subtree produce that subtree's alarm; the global alarm requires the
// whole field.
//
// Build & run:  ./build/examples/wsn_monitoring
#include <iostream>

#include "proto/messages.hpp"
#include "runner/monitor.hpp"
#include "trace/pulse.hpp"

using namespace hpd;

int main() {
  Rng layout_rng(2026);
  MonitorConfig cfg;
  cfg.topology = net::Topology::random_geometric(60, 0.22, layout_rng);
  cfg.tree = net::SpanningTree::bfs_tree(cfg.topology, 0);
  cfg.horizon = 2500.0;
  cfg.drain = 150.0;
  cfg.seed = 7;

  std::cout << "WSN: 60 sensors, " << cfg.topology.num_edges()
            << " radio links, spanning tree height " << cfg.tree->height()
            << ", max degree " << cfg.tree->max_degree() << "\n\n";

  Monitor mon(cfg);
  trace::PulseConfig pulse;
  pulse.rounds = 24;             // 24 field-wide phenomena
  pulse.period = 100.0;
  pulse.participation = 0.97;    // sensors occasionally miss one
  pulse.jitter = 2.0;
  mon.set_behavior_factory([pulse](ProcessId) {
    return std::make_unique<trace::PulseBehavior>(pulse);
  });

  std::size_t cluster_alarms = 0;
  mon.on_occurrence([&](const detect::OccurrenceRecord& rec) {
    if (!rec.global && rec.solution.size() > 1) {
      ++cluster_alarms;  // internal node: a whole cluster saw the event
    }
  });
  mon.on_global_occurrence([](const detect::OccurrenceRecord& rec) {
    std::cout << "ALERT #" << rec.index
              << ": the entire field registered the phenomenon (t="
              << rec.time << ", " << rec.aggregate.weight
              << " sensor intervals aggregated)\n";
  });

  const auto result = mon.run();

  std::cout << "\n--- Deployment report ---\n"
            << "Field-wide alerts:        " << result.global_count << " / 24\n"
            << "Cluster-level alarms:     " << cluster_alarms << "\n"
            << "Measured alpha:           " << result.measured_alpha() << "\n"
            << "Interval reports sent:    "
            << result.metrics.msgs_of_type(proto::kReportHier) << "\n"
            << "Application messages:     "
            << result.metrics.msgs_of_type(proto::kApp) << "\n"
            << "Worst node storage peak:  "
            << result.metrics.max_node_storage_peak() << " intervals\n"
            << "Total timestamp compares: "
            << result.metrics.total_vc_comparisons() << "\n";
  std::cout << "\nEvery number above is per-node bounded: no sensor ever\n"
               "stored more than its own and its children's intervals —\n"
               "the paper's case for hierarchy in resource-constrained "
               "networks.\n";
  return 0;
}
