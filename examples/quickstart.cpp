// Quickstart: monitor a strong conjunctive predicate over a 7-node system.
//
// Seven processes form a complete binary spanning tree. We script a
// "coordination episode": every process raises its local predicate, a
// gather/scatter message wave creates the causal crossings, and everyone
// lowers the predicate again — twice. Definitely(Φ) holds once per episode
// and the monitor raises a global alarm each time (repeated detection),
// plus finer-grained subtree alarms along the way.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "proto/messages.hpp"
#include "runner/monitor.hpp"

using namespace hpd;

namespace {

/// Script one episode starting at `t0`: predicates rise, a convergecast
/// reaches the root, a broadcast comes back, predicates fall.
void script_episode(Monitor& mon, const net::SpanningTree& tree, double t0) {
  const std::size_t n = tree.size();
  for (std::size_t i = 0; i < n; ++i) {
    mon.set_predicate(static_cast<ProcessId>(i), t0, true);
  }
  // Convergecast: deepest level first so each node forwards knowledge of
  // its whole subtree upward (fixed delay 1.0 per hop).
  const int max_depth = tree.height() - 1;
  for (std::size_t i = n; i-- > 1;) {
    const auto id = static_cast<ProcessId>(i);
    mon.send_message(
        id, tree.parent(id),
        t0 + 2.0 + 2.0 * static_cast<double>(max_depth - tree.depth(id)));
  }
  // Broadcast: root down.
  for (std::size_t i = 1; i < n; ++i) {
    const auto id = static_cast<ProcessId>(i);
    mon.send_message(tree.parent(id), id,
                     t0 + 12.0 + 2.0 * static_cast<double>(tree.depth(id)));
  }
  for (std::size_t i = 0; i < n; ++i) {
    mon.set_predicate(static_cast<ProcessId>(i), t0 + 25.0, false);
  }
}

}  // namespace

int main() {
  MonitorConfig cfg;
  const auto tree = net::SpanningTree::balanced_dary(2, 3);  // 7 nodes
  cfg.topology = net::tree_topology(tree);
  cfg.tree = tree;
  cfg.delay = sim::DelayModel::fixed(1.0);
  cfg.horizon = 200.0;

  Monitor mon(cfg);
  script_episode(mon, tree, 5.0);
  script_episode(mon, tree, 80.0);

  mon.on_occurrence([&](const detect::OccurrenceRecord& rec) {
    if (!rec.global) {
      std::cout << "  [subtree alarm] node " << rec.detector << " detected "
                << "Definitely(Phi) over its subtree (occurrence #"
                << rec.index << ") at t=" << rec.time << "\n";
    }
  });
  mon.on_global_occurrence([](const detect::OccurrenceRecord& rec) {
    std::cout << "*** GLOBAL ALARM #" << rec.index
              << ": Definitely(Phi) holds across all processes (t="
              << rec.time << ") ***\n";
  });

  const auto result = mon.run();

  std::cout << "\nSummary: " << result.global_count
            << " global detections, "
            << result.metrics.total_detections() << " detections in total, "
            << result.metrics.msgs_total() << " messages ("
            << result.metrics.msgs_of_type(proto::kReportHier)
            << " interval reports).\n";
  return 0;
}
