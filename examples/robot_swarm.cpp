// Modular robotics (the paper's second motivating domain, refs [2,3]):
// a swarm of modules must verify, repeatedly, that "every module reached
// its docking pose" — a strong conjunctive predicate — before each
// reconfiguration step commits. A module can only talk to physically
// adjacent modules, and modules can fail mid-mission.
//
// The swarm is a ring of 12 modules with a few cross-braces. Each
// reconfiguration step is a coordination episode (pulse): modules flip
// "pose reached" locally, exchange token waves that create the causal
// crossings, and the spanning-tree hierarchy confirms the conjunction at
// every level — a subtree confirmation means "this physical segment is
// locked" (useful for partial commits).
//
// Build & run:  ./build/examples/robot_swarm
#include <iostream>
#include <vector>

#include "proto/messages.hpp"
#include "runner/monitor.hpp"
#include "trace/pulse.hpp"

using namespace hpd;

int main() {
  MonitorConfig cfg;
  net::Topology ring = net::Topology::ring(12);
  ring.add_edge(0, 6);  // cross-braces
  ring.add_edge(3, 9);
  cfg.topology = ring;
  cfg.tree = net::SpanningTree::bfs_tree(cfg.topology, 0);
  cfg.fault_tolerant = true;
  cfg.horizon = 1500.0;
  cfg.drain = 200.0;
  cfg.seed = 3;

  Monitor mon(cfg);
  trace::PulseConfig step;
  step.rounds = 14;          // 14 reconfiguration steps
  step.period = 90.0;
  step.participation = 0.92; // a module occasionally fails to lock in time
  mon.set_behavior_factory([step](ProcessId) {
    return std::make_unique<trace::PulseBehavior>(step);
  });

  // Module 7 burns out mid-mission.
  mon.inject_failure(7, 700.0);

  std::vector<std::size_t> segment_confirms(12, 0);
  mon.on_occurrence([&](const detect::OccurrenceRecord& rec) {
    if (!rec.global) {
      ++segment_confirms[idx(rec.detector)];
    }
  });
  mon.on_global_occurrence([](const detect::OccurrenceRecord& rec) {
    std::cout << "t=" << rec.time << "  step commit #" << rec.index
              << ": every functioning module locked its pose ("
              << rec.aggregate.weight << " modules)\n";
  });

  const auto result = mon.run();

  std::cout << "\nSegment-level confirmations per module (head of segment):\n";
  for (std::size_t i = 0; i < segment_confirms.size(); ++i) {
    if (!result.final_alive[i]) {
      std::cout << "  module " << i << ": burned out\n";
    } else if (segment_confirms[i] > 0) {
      std::cout << "  module " << i << ": " << segment_confirms[i]
                << " segment locks confirmed\n";
    }
  }
  std::cout << "\nCommits achieved: " << result.global_count << " / 14 — "
            << "steps where some module missed its pose (or the swarm was\n"
               "healing around module 7) correctly did NOT commit.\n"
            << "Messages: "
            << result.metrics.msgs_of_type(proto::kApp) << " app, "
            << result.metrics.msgs_of_type(proto::kReportHier)
            << " interval reports, "
            << result.metrics.msgs_of_type(proto::kHeartbeat)
            << " heartbeats.\n";
  return 0;
}
