// Fault tolerance in action: nodes crash mid-run, the spanning tree heals
// around them (heartbeats → orphan probing → subtree-delegated search →
// re-rooting), and the monitoring of the surviving partial predicate
// continues — the paper's headline property.
//
// A 4x4 grid runs 18 pulse rounds. Node 5 (an internal tree node) crashes
// at t = 500 and node 2 at t = 900; node 5 then RECOVERS at t = 1100 and
// rejoins the tree (crash-recovery extension). Watch the alarm stream:
// alarms keep coming after each crash, covering the survivors, and the
// coverage grows again once node 5 is readopted.
//
// Build & run:  ./build/examples/fault_tolerance
#include <iostream>

#include "proto/messages.hpp"
#include "runner/monitor.hpp"
#include "trace/pulse.hpp"

using namespace hpd;

int main() {
  MonitorConfig cfg;
  cfg.topology = net::Topology::grid(4, 4);
  cfg.tree = net::SpanningTree::bfs_tree(cfg.topology, 0);
  cfg.fault_tolerant = true;  // heartbeats + reattachment
  cfg.horizon = 1600.0;
  cfg.drain = 200.0;
  cfg.seed = 11;

  Monitor mon(cfg);
  trace::PulseConfig pulse;
  pulse.rounds = 18;
  pulse.period = 80.0;
  mon.set_behavior_factory([pulse](ProcessId) {
    return std::make_unique<trace::PulseBehavior>(pulse);
  });
  mon.inject_failure(5, 500.0);
  mon.inject_failure(2, 900.0);
  mon.inject_recovery(5, 1100.0);

  mon.on_global_occurrence([](const detect::OccurrenceRecord& rec) {
    std::cout << "t=" << rec.time << "  global alarm #" << rec.index
              << " at root " << rec.detector << " covering "
              << rec.aggregate.weight << " processes\n";
  });

  const auto result = mon.run();

  std::cout << "\n--- After the dust settles ---\n";
  std::cout << "Survivors and their parents:\n";
  for (std::size_t i = 0; i < result.final_alive.size(); ++i) {
    if (!result.final_alive[i]) {
      std::cout << "  node " << i << ": CRASHED\n";
    } else if (result.final_parents[i] == kNoProcess) {
      std::cout << "  node " << i << ": ROOT of the surviving tree\n";
    } else {
      std::cout << "  node " << i << ": child of "
                << result.final_parents[i] << "\n";
    }
  }
  std::cout << "\nGlobal alarms delivered: " << result.global_count
            << " (18 phenomena; a couple are lost while the tree heals —\n"
            << " the paper's centralized baseline would have stopped "
               "permanently instead).\n"
            << "Control traffic: "
            << result.metrics.msgs_of_type(proto::kHeartbeat)
            << " heartbeats, "
            << result.metrics.msgs_of_type(proto::kProbe) +
                   result.metrics.msgs_of_type(proto::kProbeAck)
            << " probe messages, "
            << result.metrics.msgs_of_type(proto::kFlip) +
                   result.metrics.msgs_of_type(proto::kFlipAck) +
                   result.metrics.msgs_of_type(proto::kFlipGo)
            << " re-rooting messages.\n";
  return 0;
}
