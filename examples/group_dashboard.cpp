// Group-level monitoring (the paper's "finer-grained monitoring in those
// large-scale networks where grouping is established"): subtree heads are
// group leaders, and every detection at a leader means "my whole group
// satisfied its conjunct simultaneously" — for free, as a byproduct of the
// hierarchy, with no extra messages.
//
// A 3-ary tree of 13 nodes monitors 12 pulse episodes with imperfect
// participation; the dashboard shows, per group, how many episodes the
// group confirmed versus how many reached global confirmation.
//
// Build & run:  ./build/examples/group_dashboard
#include <iostream>
#include <map>

#include "net/render.hpp"
#include "runner/monitor.hpp"
#include "trace/pulse.hpp"

using namespace hpd;

int main() {
  const auto tree = net::SpanningTree::balanced_dary(3, 3);  // 13 nodes
  MonitorConfig cfg;
  cfg.topology = net::tree_topology(tree);
  cfg.tree = tree;
  cfg.horizon = 1100.0;
  cfg.seed = 6;

  std::cout << "Monitoring hierarchy (groups = subtrees of nodes 1..3):\n";
  net::render_tree(std::cout, tree);
  std::cout << '\n';

  Monitor mon(cfg);
  trace::PulseConfig pulse;
  pulse.rounds = 12;
  pulse.period = 85.0;
  pulse.participation = 0.93;
  mon.set_behavior_factory([pulse](ProcessId) {
    return std::make_unique<trace::PulseBehavior>(pulse);
  });

  std::map<ProcessId, int> group_hits;
  for (const ProcessId head : {1, 2, 3}) {
    mon.on_group_occurrence(head, [&, head](const detect::OccurrenceRecord&) {
      ++group_hits[head];
    });
  }
  int global = 0;
  mon.on_global_occurrence([&](const detect::OccurrenceRecord&) { ++global; });

  mon.run();

  std::cout << "--- Dashboard: 12 episodes, participation 93% ---\n";
  for (const ProcessId head : {1, 2, 3}) {
    std::cout << "group " << head << " (members";
    for (const ProcessId m : tree.subtree(head)) {
      std::cout << ' ' << m;
    }
    std::cout << "): " << group_hits[head] << "/12 confirmed\n";
  }
  std::cout << "global (all 13):   " << global << "/12 confirmed\n\n"
            << "A group confirms whenever ALL of its members participated —\n"
            << "more often than the global conjunction, and detected locally\n"
            << "at the group head with zero additional traffic.\n";
  return 0;
}
