// The paper's running example (Figure 2), narrated step by step.
//
// Four processes; spanning tree P3{P2{P1}, P4}. P2's subtree satisfies the
// predicate twice ({x1,x2}, then {x1,x3}); the global predicate is
// satisfiable only with P2's *second* solution — demonstrating why each
// level must detect repeatedly. Run with --fail to crash P3 after its
// interval finishes and watch the survivors re-form around P4 and still
// detect the partial predicate in {x1, x3, x5} (Figure 2(c)).
//
// Build & run:  ./build/examples/paper_figure2 [--fail]
#include <cstring>
#include <iostream>
#include <map>

#include "runner/experiment.hpp"
#include "trace/scripted.hpp"

using namespace hpd;
using namespace hpd::runner;

namespace {

// Process mapping: paper P4 -> 0, P2 -> 1, P1 -> 2, P3 -> 3 (chosen so the
// leader election after P3's failure crowns P4, matching Fig. 2(c)).
constexpr ProcessId kP4 = 0;
constexpr ProcessId kP2 = 1;
constexpr ProcessId kP1 = 2;
constexpr ProcessId kP3 = 3;

const char* name_of(ProcessId id) {
  switch (id) {
    case kP4:
      return "P4";
    case kP2:
      return "P2";
    case kP1:
      return "P1";
    case kP3:
      return "P3";
  }
  return "?";
}

ExperimentConfig make_config(bool with_failure) {
  ExperimentConfig cfg;
  net::Topology topo(4);
  topo.add_edge(kP3, kP2);
  topo.add_edge(kP2, kP1);
  topo.add_edge(kP3, kP4);
  topo.add_edge(kP2, kP4);
  cfg.topology = topo;
  std::vector<ProcessId> parents(4, kNoProcess);
  parents[idx(kP2)] = kP3;
  parents[idx(kP4)] = kP3;
  parents[idx(kP1)] = kP2;
  cfg.tree = net::SpanningTree::from_parents(parents, kP3);

  std::map<ProcessId, std::vector<trace::ScriptAction>> scripts;
  using trace::at_predicate;
  using trace::at_send;
  scripts[kP1] = {at_predicate(1.0, true), at_send(2.0, kP2),
                  at_send(11.0, kP2), at_predicate(30.0, false)};
  scripts[kP2] = {at_predicate(1.5, true), at_send(3.5, kP1),
                  at_predicate(5.0, false), at_send(6.0, kP3),
                  at_predicate(10.0, true), at_send(13.0, kP3),
                  at_send(17.0, kP1), at_predicate(20.0, false)};
  scripts[kP3] = {at_predicate(8.0, true), at_send(15.0, kP2),
                  at_send(15.5, kP4), at_predicate(19.0, false)};
  scripts[kP4] = {at_predicate(10.0, true), at_send(13.0, kP3),
                  at_predicate(18.0, false)};
  cfg.behavior_factory = [scripts](ProcessId id) {
    auto it = scripts.find(id);
    return std::make_unique<trace::ScriptedBehavior>(
        it == scripts.end() ? std::vector<trace::ScriptAction>{}
                            : it->second);
  };

  cfg.delay = sim::DelayModel::fixed(1.0);
  cfg.horizon = with_failure ? 120.0 : 60.0;
  cfg.drain = with_failure ? 60.0 : 30.0;
  cfg.track_provenance = true;
  cfg.seed = 5;
  if (with_failure) {
    cfg.heartbeats = true;
    cfg.reattach_config.probe_window = 2.5;
    cfg.reattach_config.retry_backoff = 3.0;
    cfg.failures.push_back(FailureEvent{21.0, kP3});
  }
  return cfg;
}

void describe(const detect::OccurrenceRecord& rec) {
  std::cout << "t=" << rec.time << "  " << name_of(rec.detector)
            << " detected Definitely(Phi) over its subtree"
            << (rec.global ? " — GLOBAL for the surviving system" : "")
            << "; solution built from intervals { ";
  for (const Interval& m : rec.solution) {
    for (const auto& [origin, seq] : base_intervals(m)) {
      std::cout << name_of(origin) << "#" << seq << " ";
    }
  }
  std::cout << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bool with_failure = argc > 1 && std::strcmp(argv[1], "--fail") == 0;

  std::cout << "Intervals (paper naming): x1 = P1#1, x2 = P2#1, x3 = P2#2, "
               "x4 = P3#1, x5 = P4#1\n";
  if (with_failure) {
    std::cout << "P3 will CRASH at t = 21 (after x4 completes).\n";
  }
  std::cout << '\n';

  auto result = run_experiment(make_config(with_failure));
  for (const auto& rec : result.occurrences) {
    describe(rec);
  }

  std::cout << '\n';
  if (with_failure) {
    std::cout << "Post-failure tree: ";
    for (ProcessId id : {kP4, kP2, kP1}) {
      const ProcessId p = result.final_parents[idx(id)];
      std::cout << name_of(id)
                << (p == kNoProcess ? std::string(" (root)  ")
                                    : " under " + std::string(name_of(p)) +
                                          "  ");
    }
    std::cout << "\nThe partial predicate over {P1, P2, P4} was detected in "
                 "{x1, x3, x5},\nexactly the paper's Figure 2(c) outcome. "
                 "The centralized baseline would\nhave lost every interval "
                 "with the sink.\n";
  } else {
    std::cout << "P2 detected twice ({x1,x2}, then {x1,x3}); the root's "
                 "only\nsuccessful detection used P2's SECOND aggregate — "
                 "a one-shot detector\nat P2 would have made the global "
                 "detection impossible (the paper's\nargument for repeated "
                 "detection at every level).\n";
  }
  return 0;
}
