# Empty compiler generated dependencies file for hpd_ft.
# This may be replaced when dependencies are built.
