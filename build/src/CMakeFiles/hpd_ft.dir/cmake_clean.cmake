file(REMOVE_RECURSE
  "CMakeFiles/hpd_ft.dir/ft/heartbeat.cpp.o"
  "CMakeFiles/hpd_ft.dir/ft/heartbeat.cpp.o.d"
  "CMakeFiles/hpd_ft.dir/ft/reattach.cpp.o"
  "CMakeFiles/hpd_ft.dir/ft/reattach.cpp.o.d"
  "libhpd_ft.a"
  "libhpd_ft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpd_ft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
