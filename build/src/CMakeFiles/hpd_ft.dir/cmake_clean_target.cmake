file(REMOVE_RECURSE
  "libhpd_ft.a"
)
