file(REMOVE_RECURSE
  "CMakeFiles/hpd_core.dir/core/hier_engine.cpp.o"
  "CMakeFiles/hpd_core.dir/core/hier_engine.cpp.o.d"
  "libhpd_core.a"
  "libhpd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
