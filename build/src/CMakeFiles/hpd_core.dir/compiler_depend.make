# Empty compiler generated dependencies file for hpd_core.
# This may be replaced when dependencies are built.
