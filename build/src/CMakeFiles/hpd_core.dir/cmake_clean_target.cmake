file(REMOVE_RECURSE
  "libhpd_core.a"
)
