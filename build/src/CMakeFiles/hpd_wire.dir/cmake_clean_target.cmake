file(REMOVE_RECURSE
  "libhpd_wire.a"
)
