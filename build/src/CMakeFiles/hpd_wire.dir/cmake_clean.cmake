file(REMOVE_RECURSE
  "CMakeFiles/hpd_wire.dir/wire/codec.cpp.o"
  "CMakeFiles/hpd_wire.dir/wire/codec.cpp.o.d"
  "CMakeFiles/hpd_wire.dir/wire/delta_clock.cpp.o"
  "CMakeFiles/hpd_wire.dir/wire/delta_clock.cpp.o.d"
  "libhpd_wire.a"
  "libhpd_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpd_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
