# Empty compiler generated dependencies file for hpd_wire.
# This may be replaced when dependencies are built.
