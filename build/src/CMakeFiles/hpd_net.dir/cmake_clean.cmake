file(REMOVE_RECURSE
  "CMakeFiles/hpd_net.dir/net/render.cpp.o"
  "CMakeFiles/hpd_net.dir/net/render.cpp.o.d"
  "CMakeFiles/hpd_net.dir/net/repair.cpp.o"
  "CMakeFiles/hpd_net.dir/net/repair.cpp.o.d"
  "CMakeFiles/hpd_net.dir/net/spanning_tree.cpp.o"
  "CMakeFiles/hpd_net.dir/net/spanning_tree.cpp.o.d"
  "CMakeFiles/hpd_net.dir/net/topology.cpp.o"
  "CMakeFiles/hpd_net.dir/net/topology.cpp.o.d"
  "libhpd_net.a"
  "libhpd_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpd_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
