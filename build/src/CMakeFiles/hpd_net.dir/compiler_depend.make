# Empty compiler generated dependencies file for hpd_net.
# This may be replaced when dependencies are built.
