
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/render.cpp" "src/CMakeFiles/hpd_net.dir/net/render.cpp.o" "gcc" "src/CMakeFiles/hpd_net.dir/net/render.cpp.o.d"
  "/root/repo/src/net/repair.cpp" "src/CMakeFiles/hpd_net.dir/net/repair.cpp.o" "gcc" "src/CMakeFiles/hpd_net.dir/net/repair.cpp.o.d"
  "/root/repo/src/net/spanning_tree.cpp" "src/CMakeFiles/hpd_net.dir/net/spanning_tree.cpp.o" "gcc" "src/CMakeFiles/hpd_net.dir/net/spanning_tree.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/CMakeFiles/hpd_net.dir/net/topology.cpp.o" "gcc" "src/CMakeFiles/hpd_net.dir/net/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hpd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
