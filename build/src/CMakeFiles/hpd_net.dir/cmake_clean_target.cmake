file(REMOVE_RECURSE
  "libhpd_net.a"
)
