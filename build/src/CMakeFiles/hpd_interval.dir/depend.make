# Empty dependencies file for hpd_interval.
# This may be replaced when dependencies are built.
