file(REMOVE_RECURSE
  "CMakeFiles/hpd_interval.dir/interval/interval.cpp.o"
  "CMakeFiles/hpd_interval.dir/interval/interval.cpp.o.d"
  "libhpd_interval.a"
  "libhpd_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpd_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
