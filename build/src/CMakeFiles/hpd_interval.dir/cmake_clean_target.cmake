file(REMOVE_RECURSE
  "libhpd_interval.a"
)
