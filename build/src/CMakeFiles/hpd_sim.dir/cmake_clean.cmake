file(REMOVE_RECURSE
  "CMakeFiles/hpd_sim.dir/sim/delay.cpp.o"
  "CMakeFiles/hpd_sim.dir/sim/delay.cpp.o.d"
  "CMakeFiles/hpd_sim.dir/sim/network.cpp.o"
  "CMakeFiles/hpd_sim.dir/sim/network.cpp.o.d"
  "CMakeFiles/hpd_sim.dir/sim/scheduler.cpp.o"
  "CMakeFiles/hpd_sim.dir/sim/scheduler.cpp.o.d"
  "libhpd_sim.a"
  "libhpd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
