# Empty dependencies file for hpd_sim.
# This may be replaced when dependencies are built.
