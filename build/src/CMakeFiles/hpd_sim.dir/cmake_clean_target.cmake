file(REMOVE_RECURSE
  "libhpd_sim.a"
)
