file(REMOVE_RECURSE
  "CMakeFiles/hpd_trace.dir/trace/app_core.cpp.o"
  "CMakeFiles/hpd_trace.dir/trace/app_core.cpp.o.d"
  "CMakeFiles/hpd_trace.dir/trace/execution.cpp.o"
  "CMakeFiles/hpd_trace.dir/trace/execution.cpp.o.d"
  "CMakeFiles/hpd_trace.dir/trace/gossip.cpp.o"
  "CMakeFiles/hpd_trace.dir/trace/gossip.cpp.o.d"
  "CMakeFiles/hpd_trace.dir/trace/local_state.cpp.o"
  "CMakeFiles/hpd_trace.dir/trace/local_state.cpp.o.d"
  "CMakeFiles/hpd_trace.dir/trace/pulse.cpp.o"
  "CMakeFiles/hpd_trace.dir/trace/pulse.cpp.o.d"
  "CMakeFiles/hpd_trace.dir/trace/scripted.cpp.o"
  "CMakeFiles/hpd_trace.dir/trace/scripted.cpp.o.d"
  "CMakeFiles/hpd_trace.dir/trace/sensor.cpp.o"
  "CMakeFiles/hpd_trace.dir/trace/sensor.cpp.o.d"
  "CMakeFiles/hpd_trace.dir/trace/trace_io.cpp.o"
  "CMakeFiles/hpd_trace.dir/trace/trace_io.cpp.o.d"
  "CMakeFiles/hpd_trace.dir/trace/validate.cpp.o"
  "CMakeFiles/hpd_trace.dir/trace/validate.cpp.o.d"
  "libhpd_trace.a"
  "libhpd_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpd_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
