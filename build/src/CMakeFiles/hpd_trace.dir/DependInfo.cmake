
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/app_core.cpp" "src/CMakeFiles/hpd_trace.dir/trace/app_core.cpp.o" "gcc" "src/CMakeFiles/hpd_trace.dir/trace/app_core.cpp.o.d"
  "/root/repo/src/trace/execution.cpp" "src/CMakeFiles/hpd_trace.dir/trace/execution.cpp.o" "gcc" "src/CMakeFiles/hpd_trace.dir/trace/execution.cpp.o.d"
  "/root/repo/src/trace/gossip.cpp" "src/CMakeFiles/hpd_trace.dir/trace/gossip.cpp.o" "gcc" "src/CMakeFiles/hpd_trace.dir/trace/gossip.cpp.o.d"
  "/root/repo/src/trace/local_state.cpp" "src/CMakeFiles/hpd_trace.dir/trace/local_state.cpp.o" "gcc" "src/CMakeFiles/hpd_trace.dir/trace/local_state.cpp.o.d"
  "/root/repo/src/trace/pulse.cpp" "src/CMakeFiles/hpd_trace.dir/trace/pulse.cpp.o" "gcc" "src/CMakeFiles/hpd_trace.dir/trace/pulse.cpp.o.d"
  "/root/repo/src/trace/scripted.cpp" "src/CMakeFiles/hpd_trace.dir/trace/scripted.cpp.o" "gcc" "src/CMakeFiles/hpd_trace.dir/trace/scripted.cpp.o.d"
  "/root/repo/src/trace/sensor.cpp" "src/CMakeFiles/hpd_trace.dir/trace/sensor.cpp.o" "gcc" "src/CMakeFiles/hpd_trace.dir/trace/sensor.cpp.o.d"
  "/root/repo/src/trace/trace_io.cpp" "src/CMakeFiles/hpd_trace.dir/trace/trace_io.cpp.o" "gcc" "src/CMakeFiles/hpd_trace.dir/trace/trace_io.cpp.o.d"
  "/root/repo/src/trace/validate.cpp" "src/CMakeFiles/hpd_trace.dir/trace/validate.cpp.o" "gcc" "src/CMakeFiles/hpd_trace.dir/trace/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hpd_interval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpd_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpd_vc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
