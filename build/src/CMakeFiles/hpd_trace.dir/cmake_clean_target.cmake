file(REMOVE_RECURSE
  "libhpd_trace.a"
)
