# Empty dependencies file for hpd_trace.
# This may be replaced when dependencies are built.
