file(REMOVE_RECURSE
  "CMakeFiles/hpd_proto.dir/proto/messages.cpp.o"
  "CMakeFiles/hpd_proto.dir/proto/messages.cpp.o.d"
  "libhpd_proto.a"
  "libhpd_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpd_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
