# Empty compiler generated dependencies file for hpd_proto.
# This may be replaced when dependencies are built.
