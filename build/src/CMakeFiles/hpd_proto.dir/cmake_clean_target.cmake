file(REMOVE_RECURSE
  "libhpd_proto.a"
)
