file(REMOVE_RECURSE
  "CMakeFiles/hpd_runner.dir/runner/experiment.cpp.o"
  "CMakeFiles/hpd_runner.dir/runner/experiment.cpp.o.d"
  "CMakeFiles/hpd_runner.dir/runner/monitor.cpp.o"
  "CMakeFiles/hpd_runner.dir/runner/monitor.cpp.o.d"
  "CMakeFiles/hpd_runner.dir/runner/process_runtime.cpp.o"
  "CMakeFiles/hpd_runner.dir/runner/process_runtime.cpp.o.d"
  "libhpd_runner.a"
  "libhpd_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpd_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
