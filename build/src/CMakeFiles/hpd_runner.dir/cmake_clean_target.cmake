file(REMOVE_RECURSE
  "libhpd_runner.a"
)
