# Empty compiler generated dependencies file for hpd_runner.
# This may be replaced when dependencies are built.
