file(REMOVE_RECURSE
  "CMakeFiles/hpd_common.dir/common/assert.cpp.o"
  "CMakeFiles/hpd_common.dir/common/assert.cpp.o.d"
  "CMakeFiles/hpd_common.dir/common/logging.cpp.o"
  "CMakeFiles/hpd_common.dir/common/logging.cpp.o.d"
  "CMakeFiles/hpd_common.dir/common/rng.cpp.o"
  "CMakeFiles/hpd_common.dir/common/rng.cpp.o.d"
  "libhpd_common.a"
  "libhpd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
