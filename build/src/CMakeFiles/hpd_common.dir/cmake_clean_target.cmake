file(REMOVE_RECURSE
  "libhpd_common.a"
)
