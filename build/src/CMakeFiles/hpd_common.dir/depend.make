# Empty dependencies file for hpd_common.
# This may be replaced when dependencies are built.
