# Empty dependencies file for hpd_metrics.
# This may be replaced when dependencies are built.
