file(REMOVE_RECURSE
  "libhpd_metrics.a"
)
