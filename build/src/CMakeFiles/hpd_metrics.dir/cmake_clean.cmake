file(REMOVE_RECURSE
  "CMakeFiles/hpd_metrics.dir/metrics/counters.cpp.o"
  "CMakeFiles/hpd_metrics.dir/metrics/counters.cpp.o.d"
  "CMakeFiles/hpd_metrics.dir/metrics/report.cpp.o"
  "CMakeFiles/hpd_metrics.dir/metrics/report.cpp.o.d"
  "libhpd_metrics.a"
  "libhpd_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpd_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
