file(REMOVE_RECURSE
  "libhpd_detect.a"
)
