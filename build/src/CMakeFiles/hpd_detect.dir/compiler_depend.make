# Empty compiler generated dependencies file for hpd_detect.
# This may be replaced when dependencies are built.
