
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/centralized.cpp" "src/CMakeFiles/hpd_detect.dir/detect/centralized.cpp.o" "gcc" "src/CMakeFiles/hpd_detect.dir/detect/centralized.cpp.o.d"
  "/root/repo/src/detect/offline/enumerate.cpp" "src/CMakeFiles/hpd_detect.dir/detect/offline/enumerate.cpp.o" "gcc" "src/CMakeFiles/hpd_detect.dir/detect/offline/enumerate.cpp.o.d"
  "/root/repo/src/detect/offline/hier_replay.cpp" "src/CMakeFiles/hpd_detect.dir/detect/offline/hier_replay.cpp.o" "gcc" "src/CMakeFiles/hpd_detect.dir/detect/offline/hier_replay.cpp.o.d"
  "/root/repo/src/detect/offline/lattice.cpp" "src/CMakeFiles/hpd_detect.dir/detect/offline/lattice.cpp.o" "gcc" "src/CMakeFiles/hpd_detect.dir/detect/offline/lattice.cpp.o.d"
  "/root/repo/src/detect/offline/replay.cpp" "src/CMakeFiles/hpd_detect.dir/detect/offline/replay.cpp.o" "gcc" "src/CMakeFiles/hpd_detect.dir/detect/offline/replay.cpp.o.d"
  "/root/repo/src/detect/possibly.cpp" "src/CMakeFiles/hpd_detect.dir/detect/possibly.cpp.o" "gcc" "src/CMakeFiles/hpd_detect.dir/detect/possibly.cpp.o.d"
  "/root/repo/src/detect/queue_engine.cpp" "src/CMakeFiles/hpd_detect.dir/detect/queue_engine.cpp.o" "gcc" "src/CMakeFiles/hpd_detect.dir/detect/queue_engine.cpp.o.d"
  "/root/repo/src/detect/reorder.cpp" "src/CMakeFiles/hpd_detect.dir/detect/reorder.cpp.o" "gcc" "src/CMakeFiles/hpd_detect.dir/detect/reorder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hpd_interval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpd_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpd_vc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpd_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
