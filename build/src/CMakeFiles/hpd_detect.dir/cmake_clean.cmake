file(REMOVE_RECURSE
  "CMakeFiles/hpd_detect.dir/detect/centralized.cpp.o"
  "CMakeFiles/hpd_detect.dir/detect/centralized.cpp.o.d"
  "CMakeFiles/hpd_detect.dir/detect/offline/enumerate.cpp.o"
  "CMakeFiles/hpd_detect.dir/detect/offline/enumerate.cpp.o.d"
  "CMakeFiles/hpd_detect.dir/detect/offline/hier_replay.cpp.o"
  "CMakeFiles/hpd_detect.dir/detect/offline/hier_replay.cpp.o.d"
  "CMakeFiles/hpd_detect.dir/detect/offline/lattice.cpp.o"
  "CMakeFiles/hpd_detect.dir/detect/offline/lattice.cpp.o.d"
  "CMakeFiles/hpd_detect.dir/detect/offline/replay.cpp.o"
  "CMakeFiles/hpd_detect.dir/detect/offline/replay.cpp.o.d"
  "CMakeFiles/hpd_detect.dir/detect/possibly.cpp.o"
  "CMakeFiles/hpd_detect.dir/detect/possibly.cpp.o.d"
  "CMakeFiles/hpd_detect.dir/detect/queue_engine.cpp.o"
  "CMakeFiles/hpd_detect.dir/detect/queue_engine.cpp.o.d"
  "CMakeFiles/hpd_detect.dir/detect/reorder.cpp.o"
  "CMakeFiles/hpd_detect.dir/detect/reorder.cpp.o.d"
  "libhpd_detect.a"
  "libhpd_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpd_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
