# Empty compiler generated dependencies file for hpd_parallel.
# This may be replaced when dependencies are built.
