file(REMOVE_RECURSE
  "libhpd_parallel.a"
)
