file(REMOVE_RECURSE
  "CMakeFiles/hpd_parallel.dir/parallel/thread_pool.cpp.o"
  "CMakeFiles/hpd_parallel.dir/parallel/thread_pool.cpp.o.d"
  "libhpd_parallel.a"
  "libhpd_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpd_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
