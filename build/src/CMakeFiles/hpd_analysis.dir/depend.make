# Empty dependencies file for hpd_analysis.
# This may be replaced when dependencies are built.
