file(REMOVE_RECURSE
  "libhpd_analysis.a"
)
