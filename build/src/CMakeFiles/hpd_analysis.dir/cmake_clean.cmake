file(REMOVE_RECURSE
  "CMakeFiles/hpd_analysis.dir/analysis/execution_stats.cpp.o"
  "CMakeFiles/hpd_analysis.dir/analysis/execution_stats.cpp.o.d"
  "CMakeFiles/hpd_analysis.dir/analysis/fit.cpp.o"
  "CMakeFiles/hpd_analysis.dir/analysis/fit.cpp.o.d"
  "CMakeFiles/hpd_analysis.dir/analysis/formulas.cpp.o"
  "CMakeFiles/hpd_analysis.dir/analysis/formulas.cpp.o.d"
  "libhpd_analysis.a"
  "libhpd_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpd_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
