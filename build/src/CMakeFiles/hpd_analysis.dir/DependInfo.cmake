
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/execution_stats.cpp" "src/CMakeFiles/hpd_analysis.dir/analysis/execution_stats.cpp.o" "gcc" "src/CMakeFiles/hpd_analysis.dir/analysis/execution_stats.cpp.o.d"
  "/root/repo/src/analysis/fit.cpp" "src/CMakeFiles/hpd_analysis.dir/analysis/fit.cpp.o" "gcc" "src/CMakeFiles/hpd_analysis.dir/analysis/fit.cpp.o.d"
  "/root/repo/src/analysis/formulas.cpp" "src/CMakeFiles/hpd_analysis.dir/analysis/formulas.cpp.o" "gcc" "src/CMakeFiles/hpd_analysis.dir/analysis/formulas.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hpd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpd_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpd_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpd_interval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpd_vc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpd_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
