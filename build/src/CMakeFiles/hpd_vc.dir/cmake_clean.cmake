file(REMOVE_RECURSE
  "CMakeFiles/hpd_vc.dir/vc/vector_clock.cpp.o"
  "CMakeFiles/hpd_vc.dir/vc/vector_clock.cpp.o.d"
  "libhpd_vc.a"
  "libhpd_vc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpd_vc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
