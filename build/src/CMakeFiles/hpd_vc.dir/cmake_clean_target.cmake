file(REMOVE_RECURSE
  "libhpd_vc.a"
)
