# Empty compiler generated dependencies file for hpd_vc.
# This may be replaced when dependencies are built.
