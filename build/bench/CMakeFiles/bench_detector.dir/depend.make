# Empty dependencies file for bench_detector.
# This may be replaced when dependencies are built.
