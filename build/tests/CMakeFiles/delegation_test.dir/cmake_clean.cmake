file(REMOVE_RECURSE
  "CMakeFiles/delegation_test.dir/delegation_test.cpp.o"
  "CMakeFiles/delegation_test.dir/delegation_test.cpp.o.d"
  "delegation_test"
  "delegation_test.pdb"
  "delegation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delegation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
