
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/integration_test.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hpd_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpd_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpd_runner.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpd_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpd_ft.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpd_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpd_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpd_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpd_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpd_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpd_interval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpd_vc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hpd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
