# Empty compiler generated dependencies file for local_state_test.
# This may be replaced when dependencies are built.
