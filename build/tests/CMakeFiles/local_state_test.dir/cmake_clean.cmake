file(REMOVE_RECURSE
  "CMakeFiles/local_state_test.dir/local_state_test.cpp.o"
  "CMakeFiles/local_state_test.dir/local_state_test.cpp.o.d"
  "local_state_test"
  "local_state_test.pdb"
  "local_state_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
