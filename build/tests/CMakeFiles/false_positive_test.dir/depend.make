# Empty dependencies file for false_positive_test.
# This may be replaced when dependencies are built.
