file(REMOVE_RECURSE
  "CMakeFiles/false_positive_test.dir/false_positive_test.cpp.o"
  "CMakeFiles/false_positive_test.dir/false_positive_test.cpp.o.d"
  "false_positive_test"
  "false_positive_test.pdb"
  "false_positive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/false_positive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
