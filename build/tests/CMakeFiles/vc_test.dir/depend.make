# Empty dependencies file for vc_test.
# This may be replaced when dependencies are built.
