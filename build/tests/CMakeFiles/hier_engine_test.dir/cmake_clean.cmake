file(REMOVE_RECURSE
  "CMakeFiles/hier_engine_test.dir/hier_engine_test.cpp.o"
  "CMakeFiles/hier_engine_test.dir/hier_engine_test.cpp.o.d"
  "hier_engine_test"
  "hier_engine_test.pdb"
  "hier_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hier_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
