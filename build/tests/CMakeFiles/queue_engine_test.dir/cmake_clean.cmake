file(REMOVE_RECURSE
  "CMakeFiles/queue_engine_test.dir/queue_engine_test.cpp.o"
  "CMakeFiles/queue_engine_test.dir/queue_engine_test.cpp.o.d"
  "queue_engine_test"
  "queue_engine_test.pdb"
  "queue_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queue_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
