# Empty compiler generated dependencies file for possibly_test.
# This may be replaced when dependencies are built.
