file(REMOVE_RECURSE
  "CMakeFiles/possibly_test.dir/possibly_test.cpp.o"
  "CMakeFiles/possibly_test.dir/possibly_test.cpp.o.d"
  "possibly_test"
  "possibly_test.pdb"
  "possibly_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/possibly_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
