file(REMOVE_RECURSE
  "CMakeFiles/wire_integration_test.dir/wire_integration_test.cpp.o"
  "CMakeFiles/wire_integration_test.dir/wire_integration_test.cpp.o.d"
  "wire_integration_test"
  "wire_integration_test.pdb"
  "wire_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
