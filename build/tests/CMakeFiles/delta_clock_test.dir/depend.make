# Empty dependencies file for delta_clock_test.
# This may be replaced when dependencies are built.
