file(REMOVE_RECURSE
  "CMakeFiles/delta_clock_test.dir/delta_clock_test.cpp.o"
  "CMakeFiles/delta_clock_test.dir/delta_clock_test.cpp.o.d"
  "delta_clock_test"
  "delta_clock_test.pdb"
  "delta_clock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delta_clock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
