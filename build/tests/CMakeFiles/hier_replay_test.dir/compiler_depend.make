# Empty compiler generated dependencies file for hier_replay_test.
# This may be replaced when dependencies are built.
