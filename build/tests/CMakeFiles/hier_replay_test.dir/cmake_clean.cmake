file(REMOVE_RECURSE
  "CMakeFiles/hier_replay_test.dir/hier_replay_test.cpp.o"
  "CMakeFiles/hier_replay_test.dir/hier_replay_test.cpp.o.d"
  "hier_replay_test"
  "hier_replay_test.pdb"
  "hier_replay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hier_replay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
