file(REMOVE_RECURSE
  "CMakeFiles/hpd_cli.dir/hpd_sim.cpp.o"
  "CMakeFiles/hpd_cli.dir/hpd_sim.cpp.o.d"
  "hpd_sim"
  "hpd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpd_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
