# Empty compiler generated dependencies file for hpd_cli.
# This may be replaced when dependencies are built.
