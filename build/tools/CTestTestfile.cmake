# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_help "/root/repo/build/tools/hpd_sim" "--help")
set_tests_properties(cli_help PROPERTIES  PASS_REGULAR_EXPRESSION "--topology SPEC" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_pulse_dary "/root/repo/build/tools/hpd_sim" "--topology" "dary:2:3" "--workload" "pulse:rounds=4" "--seed" "2")
set_tests_properties(cli_pulse_dary PROPERTIES  PASS_REGULAR_EXPRESSION "global detections[ ]+4" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_central_grid "/root/repo/build/tools/hpd_sim" "--topology" "grid:3x3" "--detector" "central" "--workload" "pulse:rounds=3" "--occurrences")
set_tests_properties(cli_central_grid PROPERTIES  PASS_REGULAR_EXPRESSION "GLOBAL" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_possibly "/root/repo/build/tools/hpd_sim" "--topology" "complete:4" "--detector" "possibly" "--workload" "pulse:rounds=3")
set_tests_properties(cli_possibly PROPERTIES  PASS_REGULAR_EXPRESSION "detector=possibly" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_fault_tolerant_failure "/root/repo/build/tools/hpd_sim" "--topology" "geometric:20:0.35" "--fault-tolerant" "--fail" "150:3" "--workload" "pulse:rounds=5" "--seed" "4")
set_tests_properties(cli_fault_tolerant_failure PROPERTIES  PASS_REGULAR_EXPRESSION "3: crashed" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;29;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_stats "/root/repo/build/tools/hpd_sim" "--topology" "ring:6" "--workload" "gossip:horizon=100" "--stats")
set_tests_properties(cli_stats PROPERTIES  PASS_REGULAR_EXPRESSION "cross-process interval pairs" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;35;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_flag "/root/repo/build/tools/hpd_sim" "--nonsense")
set_tests_properties(cli_bad_flag PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;40;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_repeat_sweep "/root/repo/build/tools/hpd_sim" "--topology" "dary:2:3" "--workload" "pulse:rounds=3" "--repeat" "4")
set_tests_properties(cli_repeat_sweep PROPERTIES  PASS_REGULAR_EXPRESSION "mean over 4 seeds" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;43;add_test;/root/repo/tools/CMakeLists.txt;0;")
