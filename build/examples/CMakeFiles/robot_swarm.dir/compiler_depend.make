# Empty compiler generated dependencies file for robot_swarm.
# This may be replaced when dependencies are built.
