file(REMOVE_RECURSE
  "CMakeFiles/paper_figure2.dir/paper_figure2.cpp.o"
  "CMakeFiles/paper_figure2.dir/paper_figure2.cpp.o.d"
  "paper_figure2"
  "paper_figure2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_figure2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
