# Empty compiler generated dependencies file for group_dashboard.
# This may be replaced when dependencies are built.
