file(REMOVE_RECURSE
  "CMakeFiles/group_dashboard.dir/group_dashboard.cpp.o"
  "CMakeFiles/group_dashboard.dir/group_dashboard.cpp.o.d"
  "group_dashboard"
  "group_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/group_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
