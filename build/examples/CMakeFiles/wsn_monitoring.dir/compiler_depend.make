# Empty compiler generated dependencies file for wsn_monitoring.
# This may be replaced when dependencies are built.
