file(REMOVE_RECURSE
  "CMakeFiles/wsn_monitoring.dir/wsn_monitoring.cpp.o"
  "CMakeFiles/wsn_monitoring.dir/wsn_monitoring.cpp.o.d"
  "wsn_monitoring"
  "wsn_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsn_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
