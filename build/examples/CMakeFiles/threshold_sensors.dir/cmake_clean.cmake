file(REMOVE_RECURSE
  "CMakeFiles/threshold_sensors.dir/threshold_sensors.cpp.o"
  "CMakeFiles/threshold_sensors.dir/threshold_sensors.cpp.o.d"
  "threshold_sensors"
  "threshold_sensors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threshold_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
