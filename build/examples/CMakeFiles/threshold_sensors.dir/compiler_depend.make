# Empty compiler generated dependencies file for threshold_sensors.
# This may be replaced when dependencies are built.
