// Fault-tolerance experiment (extension A3): detections delivered as nodes
// crash. The hierarchical algorithm repairs the spanning tree and keeps
// detecting the partial predicate over the survivors; the centralized
// baseline [12] loses everything when the sink (or any relay on a path)
// dies.
#include <iostream>

#include "bench/bench_util.hpp"
#include "metrics/report.hpp"
#include "net/spanning_tree.hpp"
#include "net/topology.hpp"
#include "metrics/counters.hpp"

namespace hpd {
namespace {

bench::JsonReport g_report("bench_faults");

runner::ExperimentConfig grid_config(runner::DetectorKind kind,
                                     std::uint64_t seed, SeqNum rounds) {
  runner::ExperimentConfig cfg;
  cfg.topology = net::Topology::grid(4, 4);
  cfg.tree = net::SpanningTree::bfs_tree(cfg.topology, 0);
  trace::PulseConfig pc;
  pc.rounds = rounds;
  pc.start = 5.0;
  pc.period = 80.0;
  pc.participation = 1.0;
  cfg.behavior_factory = [pc](ProcessId) {
    return std::make_unique<trace::PulseBehavior>(pc);
  };
  cfg.horizon = 5.0 + static_cast<SimTime>(rounds) * 80.0 + 80.0;
  cfg.drain = 150.0;
  cfg.seed = seed;
  cfg.detector = kind;
  cfg.keep_occurrence_records = true;
  cfg.occurrence_solutions = false;
  if (kind == runner::DetectorKind::kHierarchical) {
    cfg.heartbeats = true;
  }
  return cfg;
}

/// Count global detections before and after `t_split`.
std::pair<std::uint64_t, std::uint64_t> split_detections(
    const runner::ExperimentResult& res, SimTime t_split) {
  std::uint64_t before = 0;
  std::uint64_t after = 0;
  for (const auto& rec : res.occurrences) {
    if (rec.global) {
      (rec.time < t_split ? before : after) += 1;
    }
  }
  return {before, after};
}

void run_fault_sweep() {
  std::cout << "== Detections under crash faults (4x4 grid, 20 pulse "
               "rounds, crashes at t = 600/900) ==\n";
  TextTable t({"faults", "algo", "global before t=600", "global after",
               "tree repaired", "notes"});
  struct Case {
    std::vector<runner::FailureEvent> failures;
    std::string label;
    std::string note_hier;
    std::string note_central;
  };
  const std::vector<Case> cases = {
      {{}, "0", "-", "-"},
      {{{600.0, 5}}, "1 interior", "repairs around node 5", "relay paths die"},
      {{{600.0, 0}}, "1 root/sink", "new root elected", "sink dead: total loss"},
      {{{600.0, 5}, {900.0, 10}}, "2 interior", "repairs twice", "relay paths die"},
  };
  double hier_after_total = 0.0;
  double central_after_total = 0.0;
  double trees_repaired = 0.0;
  for (const auto& c : cases) {
    for (const auto kind : {runner::DetectorKind::kHierarchical,
                            runner::DetectorKind::kCentralized}) {
      auto cfg = grid_config(kind, 77, 20);
      if (kind == runner::DetectorKind::kCentralized) {
        cfg.heartbeats = false;
      }
      cfg.failures = c.failures;
      const auto res = runner::run_experiment(cfg);
      const auto [before, after] = split_detections(res, 600.0);
      // Check the survivors form one valid tree (hier only).
      bool repaired = true;
      std::size_t roots = 0;
      for (std::size_t i = 0; i < res.final_alive.size(); ++i) {
        if (!res.final_alive[i]) {
          continue;
        }
        const ProcessId p = res.final_parents[i];
        if (p == kNoProcess) {
          ++roots;
        } else if (!res.final_alive[idx(p)]) {
          repaired = false;
        }
      }
      repaired = repaired && roots == 1;
      const bool hier = kind == runner::DetectorKind::kHierarchical;
      (hier ? hier_after_total : central_after_total) +=
          static_cast<double>(after);
      trees_repaired += (hier && repaired) ? 1.0 : 0.0;
      t.add_row({c.label, hier ? "hier" : "central", std::to_string(before),
                 std::to_string(after),
                 hier ? (repaired ? "yes" : "NO") : "n/a",
                 hier ? c.note_hier : c.note_central});
    }
  }
  g_report.add("hier_global_after_faults_total", hier_after_total);
  g_report.add("central_global_after_faults_total", central_after_total);
  g_report.add("hier_trees_repaired", trees_repaired);
  t.print(std::cout);
  std::cout << "\nExpected shape: the hierarchical detector keeps raising\n"
               "alarms for the surviving partial predicate after every\n"
               "fault; the centralized baseline stops detecting after its\n"
               "sink dies and silently loses reports whose relay paths\n"
               "crossed a dead node.\n\n";
}

}  // namespace
}  // namespace hpd

int main() {
  hpd::run_fault_sweep();
  hpd::g_report.write();
  return 0;
}
