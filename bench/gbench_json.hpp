// google-benchmark adapter for the shared JSON bench reporter: a console
// reporter that also captures every run's per-iteration real time into a
// `bench::JsonReport`, so the gbench binaries emit the same
// `bench/out/BENCH_<name>.json` files as the hand-rolled benches.
//
// Kernels whose function name ends in "Baseline" are the frozen pre-
// optimization implementations (built from `tests/reference/`); their runs
// are split into a second `BENCH_<name>_baseline.json` file under the
// un-suffixed kernel name, so
//
//   hpd_bench_diff bench/out/BENCH_bench_micro_baseline.json
//                  bench/out/BENCH_bench_micro.json
//
// directly measures the optimized kernels against the seed implementations.
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_util.hpp"

namespace hpd::bench {

class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCaptureReporter(const std::string& bench_name)
      : current_(bench_name), baseline_(bench_name + "_baseline") {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) {
        continue;
      }
      // Under --benchmark_repetitions=N each kernel reports N iteration
      // runs plus mean/median/stddev aggregates; keep only the median (the
      // stable statistic on noisy machines) so the metric name — and hence
      // the baseline diff — is identical in both modes.
      if (run.run_type == Run::RT_Iteration) {
        if (run.repetitions > 1) {
          continue;
        }
      } else if (run.aggregate_name != "median") {
        continue;
      }
      std::string name = run.benchmark_name();
      if (run.run_type != Run::RT_Iteration) {
        constexpr const char kMedian[] = "_median";
        constexpr std::size_t kMedianLen = sizeof kMedian - 1;
        if (name.size() > kMedianLen &&
            name.compare(name.size() - kMedianLen, kMedianLen, kMedian) ==
                0) {
          name.erase(name.size() - kMedianLen, kMedianLen);
        }
      }
      JsonReport* sink = &current_;
      const std::size_t slash = name.find('/');
      const std::string fn = name.substr(0, slash);
      constexpr const char kSuffix[] = "Baseline";
      constexpr std::size_t kSuffixLen = sizeof kSuffix - 1;
      if (fn.size() > kSuffixLen &&
          fn.compare(fn.size() - kSuffixLen, kSuffixLen, kSuffix) == 0) {
        sink = &baseline_;
        name.erase(fn.size() - kSuffixLen, kSuffixLen);
      }
      for (char& c : name) {
        if (c == '/') {
          c = '_';
        }
      }
      // GetAdjustedRealTime() is per-iteration time in the run's time unit;
      // none of our kernels override the default (nanoseconds).
      sink->add(name + "_real_ns", run.GetAdjustedRealTime());
    }
  }

  /// Writes BENCH_<name>.json, plus BENCH_<name>_baseline.json if any
  /// Baseline-suffixed kernels ran.
  void write() const {
    current_.write();
    if (!baseline_.empty()) {
      baseline_.write();
    }
  }

 private:
  JsonReport current_;
  JsonReport baseline_;
};

/// Shared main() body for the gbench binaries: run everything through a
/// JsonCaptureReporter, then write the JSON snapshot(s).
inline int gbench_json_main(const std::string& bench_name, int argc,
                            char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  JsonCaptureReporter reporter(bench_name);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  reporter.write();
  return 0;
}

}  // namespace hpd::bench
