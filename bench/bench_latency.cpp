// Detection-latency experiment (extension): how long after the last
// participating interval completes does each algorithm raise the global
// alarm?
//
// The hierarchy adds a level of aggregation per tree level, but each report
// travels only one hop; the centralized sink needs no aggregation but its
// reports cross up to h-1 hops. With per-hop delays the two roughly cancel
// — measured here so the trade-off is numbers, not intuition.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench/bench_util.hpp"
#include "metrics/report.hpp"

namespace hpd {
namespace {

bench::JsonReport g_report("bench_latency");

struct LatencyStats {
  double mean = 0.0;
  double p95 = 0.0;
  double max = 0.0;
  std::size_t count = 0;
};

LatencyStats global_latency(std::size_t d, std::size_t h, SeqNum rounds,
                            std::uint64_t seed, runner::DetectorKind kind) {
  auto cfg = bench::pulse_config(d, h, rounds, 1.0, seed, kind);
  cfg.keep_occurrence_records = true;
  cfg.occurrence_solutions = false;
  const auto res = runner::run_experiment(cfg);
  std::vector<double> lat;
  for (const auto& rec : res.occurrences) {
    if (rec.global) {
      lat.push_back(rec.latency());
    }
  }
  LatencyStats out;
  out.count = lat.size();
  if (lat.empty()) {
    return out;
  }
  std::sort(lat.begin(), lat.end());
  double sum = 0.0;
  for (const double v : lat) {
    sum += v;
  }
  out.mean = sum / static_cast<double>(lat.size());
  out.p95 = lat[std::min(lat.size() - 1,
                         static_cast<std::size_t>(
                             0.95 * static_cast<double>(lat.size())))];
  out.max = lat.back();
  return out;
}

}  // namespace
}  // namespace hpd

int main() {
  using hpd::TextTable;
  std::cout << "== Global detection latency (time units; channel delay "
               "U(0.5,1.5) per hop; 20 rounds, full participation) ==\n";
  TextTable t({"d", "h", "n", "algo", "detections", "mean", "p95", "max"});
  struct Shape {
    std::size_t d;
    std::size_t h;
  };
  for (const Shape s :
       {Shape{2, 3}, Shape{2, 5}, Shape{2, 7}, Shape{4, 3}, Shape{4, 4}}) {
    for (const auto kind : {hpd::runner::DetectorKind::kHierarchical,
                            hpd::runner::DetectorKind::kCentralized}) {
      const auto st = hpd::global_latency(s.d, s.h, 20, 99, kind);
      hpd::g_report.add(
          "d" + std::to_string(s.d) + "h" + std::to_string(s.h) +
              (kind == hpd::runner::DetectorKind::kHierarchical ? "_hier"
                                                                : "_central") +
              "_mean_latency",
          st.mean);
      t.add_row(
          {std::to_string(s.d), std::to_string(s.h),
           std::to_string(hpd::net::SpanningTree::balanced_dary_size(s.d, s.h)),
           kind == hpd::runner::DetectorKind::kHierarchical ? "hier"
                                                            : "central",
           std::to_string(st.count), TextTable::num(st.mean, 2),
           TextTable::num(st.p95, 2), TextTable::num(st.max, 2)});
    }
  }
  t.print(std::cout);
  std::cout << "\nBoth algorithms pay roughly (h-1) hops of delay on the\n"
               "critical path — the hierarchy through per-level aggregation,\n"
               "the sink through multi-hop relays — so latency is a wash\n"
               "while messages and per-node costs strongly favour the "
               "hierarchy.\n";
  hpd::g_report.write();
  return 0;
}
