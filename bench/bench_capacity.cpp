// Bounded-memory experiment (extension): the paper motivates the hierarchy
// with resource-constrained nodes. Here every node's detection queues are
// capped and we measure how gracefully detection degrades as memory
// shrinks — and how much *less* memory the hierarchical algorithm needs
// for the same detection yield (the sink must queue intervals from all n
// processes; a hierarchical node only from itself and its d children).
#include <iostream>

#include "bench/bench_util.hpp"
#include "metrics/report.hpp"

namespace hpd {
namespace {

bench::JsonReport g_report("bench_capacity");

void capacity_sweep(std::size_t d, std::size_t h, double participation) {
  std::cout << "== Detections vs per-queue capacity, d = " << d
            << ", h = " << h << ", participation = " << participation
            << ", 25 rounds ==\n";
  TextTable t({"capacity/queue", "algo", "node memory bound",
               "global detections", "store max-node"});
  const std::size_t n = net::SpanningTree::balanced_dary_size(d, h);
  for (const std::size_t cap : {0u, 8u, 4u, 2u, 1u}) {
    for (const auto kind : {runner::DetectorKind::kHierarchical,
                            runner::DetectorKind::kCentralized}) {
      auto cfg = bench::pulse_config(d, h, 25, participation, 2024, kind);
      cfg.queue_capacity = cap;
      const auto res = runner::run_experiment(cfg);
      const bool hier = kind == runner::DetectorKind::kHierarchical;
      g_report.add(
          "d" + std::to_string(d) + "h" + std::to_string(h) + "_p" +
              std::to_string(static_cast<int>(participation * 100.0 + 0.5)) +
              "_cap" + std::to_string(cap) + (hier ? "_hier" : "_central") +
              "_global",
          static_cast<double>(res.global_count));
      // Per-queue caps translate to very different per-node memory: a
      // hierarchical node has d+1 queues, the sink has n.
      const std::size_t node_bound = cap * (hier ? (d + 1) : n);
      t.add_row({cap == 0 ? "unbounded" : std::to_string(cap),
                 hier ? "hier" : "central",
                 cap == 0 ? "-" : std::to_string(node_bound),
                 std::to_string(res.global_count),
                 std::to_string(res.metrics.max_node_storage_peak())});
    }
  }
  t.print(std::cout);
  std::cout << '\n';
}

}  // namespace
}  // namespace hpd

int main() {
  hpd::capacity_sweep(2, 4, 1.0);
  hpd::capacity_sweep(2, 4, 0.85);
  std::cout
      << "Reading the numbers: at full participation one slot per queue\n"
         "already sustains full yield for both algorithms. Under partial\n"
         "participation hierarchical nodes buffer partially-matched rounds\n"
         "per level, so equal PER-QUEUE caps throttle the hierarchy before\n"
         "the sink — but note the memory column: the same cap grants the\n"
         "sink n*cap intervals vs (d+1)*cap per hierarchical node. At\n"
         "equal PER-NODE memory (compare rows with similar bounds) the\n"
         "hierarchy delivers the same or better yield from a fraction of\n"
         "the worst-case node budget — the paper's actual claim.\n";
  hpd::g_report.write();
  return 0;
}
