// Shared helpers for the table/figure benches.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "net/spanning_tree.hpp"
#include "proto/messages.hpp"
#include "runner/experiment.hpp"
#include "trace/pulse.hpp"

namespace hpd::bench {

/// Machine-readable bench output: a flat `metric name -> value` map written
/// as `BENCH_<name>.json` so runs can be diffed by `tools/hpd_bench_diff`.
///
/// Output directory: `$HPD_BENCH_OUT` if set, else `bench/out` relative to
/// the current working directory (so running a bench from the repo root
/// lands next to the committed `bench/baselines/` snapshots).
///
/// The format is deliberately minimal — one object, insertion-ordered keys:
///
///   { "bench": "<name>", "metrics": { "<metric>": <number>, ... } }
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}

  void add(const std::string& metric, double value) {
    metrics_.emplace_back(metric, value);
  }

  bool empty() const { return metrics_.empty(); }
  const std::string& name() const { return name_; }

  static std::filesystem::path out_dir() {
    if (const char* dir = std::getenv("HPD_BENCH_OUT")) {
      return dir;
    }
    return std::filesystem::path("bench") / "out";
  }

  /// Writes `<out_dir>/BENCH_<name>.json` (creating the directory) and
  /// returns the path written.
  std::filesystem::path write() const {
    const std::filesystem::path dir = out_dir();
    std::filesystem::create_directories(dir);
    const std::filesystem::path file = dir / ("BENCH_" + name_ + ".json");
    std::ofstream os(file);
    os << "{\n  \"bench\": \"" << name_ << "\",\n  \"metrics\": {";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.17g", metrics_[i].second);
      os << (i == 0 ? "\n" : ",\n") << "    \"" << metrics_[i].first
         << "\": " << buf;
    }
    os << "\n  }\n}\n";
    return file;
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, double>> metrics_;
};

/// One simulated detection run over a paper-model d-ary tree with the pulse
/// workload (`rounds` pulses; `participation` tunes the paper's α).
inline runner::ExperimentConfig pulse_config(std::size_t d, std::size_t h,
                                             SeqNum rounds,
                                             double participation,
                                             std::uint64_t seed,
                                             runner::DetectorKind kind) {
  runner::ExperimentConfig cfg;
  cfg.tree = net::SpanningTree::balanced_dary(d, h);
  cfg.topology = net::tree_topology(cfg.tree);
  trace::PulseConfig pc;
  pc.rounds = rounds;
  pc.start = 5.0;
  pc.period = 60.0;
  pc.participation = participation;
  cfg.behavior_factory = [pc](ProcessId) {
    return std::make_unique<trace::PulseBehavior>(pc);
  };
  cfg.horizon = 5.0 + static_cast<SimTime>(rounds) * 60.0 + 60.0;
  cfg.drain = 100.0;
  cfg.seed = seed;
  cfg.detector = kind;
  cfg.keep_occurrence_records = false;  // sweeps only need the counters
  return cfg;
}

struct PulseOutcome {
  std::uint64_t report_msgs = 0;  ///< hier: one-hop; central: hop-weighted
  std::uint64_t global = 0;
  double measured_alpha = 0.0;
  std::uint64_t comparisons = 0;
  std::uint64_t storage_peak_max = 0;  ///< worst single node
  std::uint64_t storage_peak_sum = 0;  ///< across all nodes
};

inline PulseOutcome run_pulse(std::size_t d, std::size_t h, SeqNum rounds,
                              double participation, std::uint64_t seed,
                              runner::DetectorKind kind) {
  const auto cfg = pulse_config(d, h, rounds, participation, seed, kind);
  const auto res = runner::run_experiment(cfg);
  PulseOutcome out;
  out.report_msgs = res.metrics.msgs_of_type(
      kind == runner::DetectorKind::kHierarchical ? proto::kReportHier
                                                  : proto::kReportCentral);
  out.global = res.global_count;
  out.measured_alpha = res.measured_alpha();
  out.comparisons = res.metrics.total_vc_comparisons();
  out.storage_peak_max = res.metrics.max_node_storage_peak();
  out.storage_peak_sum = res.metrics.sum_node_storage_peak();
  return out;
}

}  // namespace hpd::bench
