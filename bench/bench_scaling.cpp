// Scaling experiment (extension A5): wall-clock cost of whole simulated
// deployments as the network grows, and the throughput of fanning
// independent runs across cores with the sweep thread pool.
#include <chrono>
#include <iostream>
#include <thread>

#include "bench/bench_util.hpp"
#include "metrics/report.hpp"
#include "parallel/thread_pool.hpp"

namespace hpd {
namespace {

// Wall-clock metrics: noisy by nature, recorded for trend-watching only —
// CI gates on the deterministic and micro benches, not on these.
bench::JsonReport g_report("bench_scaling");

double run_timed(std::size_t d, std::size_t h, SeqNum rounds,
                 std::uint64_t seed) {
  const auto start = std::chrono::steady_clock::now();
  const auto out =
      bench::run_pulse(d, h, rounds, 1.0, seed,
                       runner::DetectorKind::kHierarchical);
  (void)out;
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

void scaling_table() {
  std::cout << "== Simulator wall-clock vs network size (10 pulse rounds) ==\n";
  TextTable t({"d", "h", "n", "wall ms"});
  struct Shape {
    std::size_t d;
    std::size_t h;
  };
  for (const Shape s : {Shape{2, 4}, Shape{2, 6}, Shape{2, 8}, Shape{2, 10},
                        Shape{4, 4}, Shape{4, 5}}) {
    const double ms = run_timed(s.d, s.h, 10, 7);
    g_report.add("wall_ms_d" + std::to_string(s.d) + "_h" +
                     std::to_string(s.h),
                 ms);
    t.add_row({std::to_string(s.d), std::to_string(s.h),
               std::to_string(net::SpanningTree::balanced_dary_size(s.d, s.h)),
               TextTable::num(ms, 1)});
  }
  t.print(std::cout);
  std::cout << '\n';
}

void sweep_throughput() {
  std::cout << "== Parallel sweep throughput (32 runs of d=2,h=6); "
            << "hardware threads available: "
            << std::thread::hardware_concurrency()
            << " (no speedup is expected on a single-core host) ==\n";
  TextTable t({"threads", "wall ms", "speedup"});
  const std::size_t kRuns = 32;
  double serial_ms = 0.0;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    parallel::ThreadPool pool(threads);
    const auto start = std::chrono::steady_clock::now();
    parallel::parallel_for(pool, kRuns, [&](std::size_t i) {
      bench::run_pulse(2, 6, 10, 1.0, 1000 + i,
                       runner::DetectorKind::kHierarchical);
    });
    const auto end = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(end - start).count();
    if (threads == 1) {
      serial_ms = ms;
    }
    g_report.add("sweep32_wall_ms_t" + std::to_string(threads), ms);
    t.add_row({std::to_string(threads), TextTable::num(ms, 1),
               TextTable::num(serial_ms / ms, 2)});
  }
  t.print(std::cout);
  std::cout << '\n';
}

}  // namespace
}  // namespace hpd

int main() {
  hpd::scaling_table();
  hpd::sweep_throughput();
  hpd::g_report.write();
  return 0;
}
