// Slicing-vs-centralized detection latency at rising event rates
// (extension): both sinks sit at the tree root and see the identical report
// stream; the slicing sink additionally runs the admission filter, whose
// binary-searched doom certificates discard provably dead intervals before
// they reach the queue engine.
//
// Two workload regimes bracket the filter's behaviour:
//   * pulse — synchronized truth rounds; every interval is in a solution
//     (the slice is the whole computation), so the filter is pure overhead
//     and the table quantifies it;
//   * gossip at rising event rates (shrinking mean action gap) — most
//     intervals are causally chained and provably doomed, so the filter
//     sheds queue admissions the centralized sink must grind through.
//     The filter pays vector-clock comparisons (binary search per stream)
//     to buy those evictions; the enqueued column shows the purchase.
//
// Latency is the paper's detection latency: alarm time minus completion of
// the latest member interval. The comparison counter is apples-to-apples —
// for the slicing sink it includes every vector-clock comparison the slice
// filter itself spends.
#include <algorithm>
#include <iostream>
#include <memory>
#include <vector>

#include "bench/bench_util.hpp"
#include "metrics/report.hpp"
#include "trace/gossip.hpp"
#include "trace/pulse.hpp"

namespace hpd {
namespace {

bench::JsonReport g_report("bench_slicing");

struct Outcome {
  double mean = 0.0;
  double p95 = 0.0;
  std::size_t count = 0;
  std::uint64_t comparisons = 0;
  std::uint64_t enqueued = 0;  ///< intervals admitted into the queue engine
  double rate = 0.0;  ///< completed intervals per time unit, whole system
};

Outcome collect(runner::ExperimentConfig cfg) {
  cfg.keep_occurrence_records = true;
  cfg.occurrence_solutions = false;
  cfg.record_execution = true;  // the event rate is a workload property
  const auto res = runner::run_experiment(cfg);
  std::vector<double> lat;
  for (const auto& rec : res.occurrences) {
    if (rec.global) {
      lat.push_back(rec.latency());
    }
  }
  Outcome out;
  out.count = lat.size();
  out.comparisons = res.metrics.total_vc_comparisons();
  out.enqueued = res.metrics.total_intervals_enqueued();
  out.rate = res.end_time > 0.0
                 ? static_cast<double>(res.execution.total_intervals()) /
                       res.end_time
                 : 0.0;
  if (lat.empty()) {
    return out;
  }
  std::sort(lat.begin(), lat.end());
  double sum = 0.0;
  for (const double v : lat) {
    sum += v;
  }
  out.mean = sum / static_cast<double>(lat.size());
  out.p95 = lat[std::min(lat.size() - 1,
                         static_cast<std::size_t>(
                             0.95 * static_cast<double>(lat.size())))];
  return out;
}

runner::ExperimentConfig shape_config(std::size_t d, std::size_t h,
                                      runner::DetectorKind kind,
                                      std::uint64_t seed) {
  runner::ExperimentConfig cfg;
  cfg.tree = net::SpanningTree::balanced_dary(d, h);
  cfg.topology = net::tree_topology(cfg.tree);
  cfg.seed = seed;
  cfg.detector = kind;
  return cfg;
}

Outcome run_pulse(std::size_t d, std::size_t h, runner::DetectorKind kind) {
  auto cfg = shape_config(d, h, kind, 99);
  trace::PulseConfig pc;
  pc.rounds = 20;
  pc.start = 5.0;
  pc.period = 60.0;
  pc.participation = 1.0;
  cfg.behavior_factory = [pc](ProcessId) {
    return std::make_unique<trace::PulseBehavior>(pc);
  };
  cfg.horizon = 5.0 + 21.0 * 60.0;
  cfg.drain = 100.0;
  return collect(std::move(cfg));
}

Outcome run_gossip(std::size_t d, std::size_t h, SimTime mean_gap,
                   runner::DetectorKind kind) {
  auto cfg = shape_config(d, h, kind, 99);
  trace::GossipConfig g;
  g.horizon = 1500.0;
  g.mean_gap = mean_gap;
  g.p_send = 0.5;
  g.p_toggle = 0.45;
  g.max_intervals = 400;
  cfg.behavior_factory = [g](ProcessId) {
    return std::make_unique<trace::GossipBehavior>(g);
  };
  cfg.horizon = g.horizon;
  cfg.drain = 100.0;
  return collect(std::move(cfg));
}

const char* algo_name(runner::DetectorKind kind) {
  return kind == runner::DetectorKind::kCentralized ? "central" : "slicing";
}

}  // namespace
}  // namespace hpd

int main() {
  using hpd::TextTable;
  constexpr auto kCentral = hpd::runner::DetectorKind::kCentralized;
  constexpr auto kSlicing = hpd::runner::DetectorKind::kSlicing;

  std::cout << "== Pulse rounds (full-slice regime: nothing is doomed, the "
               "filter is pure overhead) ==\n";
  TextTable t({"d", "h", "n", "algo", "detections", "mean", "p95",
               "enqueued", "comparisons"});
  struct Shape {
    std::size_t d;
    std::size_t h;
  };
  for (const Shape s : {Shape{2, 4}, Shape{2, 5}, Shape{4, 3}}) {
    for (const auto kind : {kCentral, kSlicing}) {
      const auto o = hpd::run_pulse(s.d, s.h, kind);
      const std::string key = "pulse_d" + std::to_string(s.d) + "h" +
                              std::to_string(s.h) + "_" + hpd::algo_name(kind);
      hpd::g_report.add(key + "_mean_latency", o.mean);
      hpd::g_report.add(key + "_comparisons",
                        static_cast<double>(o.comparisons));
      t.add_row({std::to_string(s.d), std::to_string(s.h),
                 std::to_string(
                     hpd::net::SpanningTree::balanced_dary_size(s.d, s.h)),
                 hpd::algo_name(kind), std::to_string(o.count),
                 TextTable::num(o.mean, 2), TextTable::num(o.p95, 2),
                 std::to_string(o.enqueued),
                 std::to_string(o.comparisons)});
    }
  }
  t.print(std::cout);

  std::cout << "\n== Gossip at rising event rates (doom-heavy regime: the "
               "filter sheds provably dead intervals) ==\n";
  TextTable u({"d", "h", "mean_gap", "rate", "algo", "detections", "mean",
               "p95", "enqueued", "comparisons"});
  for (const Shape s : {Shape{2, 2}, Shape{3, 2}}) {
    for (const hpd::SimTime gap : {12.0, 6.0, 3.0}) {
      for (const auto kind : {kCentral, kSlicing}) {
        const auto o = hpd::run_gossip(s.d, s.h, gap, kind);
        const std::string key = "gossip_d" + std::to_string(s.d) + "h" +
                                std::to_string(s.h) + "_g" +
                                std::to_string(static_cast<int>(gap)) + "_" +
                                hpd::algo_name(kind);
        hpd::g_report.add(key + "_mean_latency", o.mean);
        hpd::g_report.add(key + "_comparisons",
                          static_cast<double>(o.comparisons));
        hpd::g_report.add(key + "_enqueued",
                          static_cast<double>(o.enqueued));
        u.add_row({std::to_string(s.d), std::to_string(s.h),
                   TextTable::num(gap, 0), TextTable::num(o.rate, 2),
                   hpd::algo_name(kind), std::to_string(o.count),
                   TextTable::num(o.mean, 2), TextTable::num(o.p95, 2),
                   std::to_string(o.enqueued),
                   std::to_string(o.comparisons)});
      }
    }
  }
  u.print(std::cout);
  std::cout << "\nBoth sinks raise the same alarms over the same report\n"
               "stream, so detection latency is identical up to scheduling\n"
               "noise. The enqueued column shows the admissions the slice\n"
               "filter sheds (pulse: none — every interval survives; dense\n"
               "gossip: most are doomed on arrival), and the comparison\n"
               "column shows the vector-clock work the filter spends to\n"
               "earn those doom certificates.\n";
  hpd::g_report.write();
  return 0;
}
