// α-sensitivity experiment (extension A6): how round participation maps to
// the paper's α (probability that a node's child aggregates combine one
// level up), per level and in aggregate, and how the measured message
// counts track Eq. (11) evaluated at the measured α.
#include <cmath>
#include <iostream>

#include "analysis/formulas.hpp"
#include "bench/bench_util.hpp"
#include "metrics/report.hpp"

namespace hpd {
namespace {

bench::JsonReport g_report("bench_alpha");

// α is not uniform across levels: a level-i solution needs ALL d^i
// processes of the subtree to participate, so α falls with height — the
// reason Eq. (11) at a single measured α overestimates (the paper treats
// α as one constant).
void per_level_table(std::size_t d, std::size_t h, double pi) {
  std::cout << "== Per-level alpha, d = " << d << ", h = " << h
            << ", participation = " << pi << ", 40 rounds ==\n";
  auto cfg = bench::pulse_config(d, h, 40, pi, 4711,
                                 runner::DetectorKind::kHierarchical);
  const auto res = runner::run_experiment(cfg);
  TextTable t({"level", "nodes", "solutions", "child intervals", "alpha"});
  for (const auto& [level, stats] : res.levels) {
    if (level < 2) {
      continue;  // leaves have no children
    }
    t.add_row({std::to_string(level), std::to_string(stats.nodes),
               std::to_string(stats.solutions),
               std::to_string(stats.child_intervals),
               TextTable::num(stats.alpha(), 3)});
  }
  t.print(std::cout);
  std::cout << '\n';
}

void sweep(std::size_t d, std::size_t h) {
  std::cout << "== alpha vs participation, d = " << d << ", h = " << h
            << ", 30 rounds (5-seed averages) ==\n";
  TextTable t({"participation", "alpha-hat", "hier msgs", "Eq.11(alpha-hat)",
               "global detections", "global expected pi^n"});
  const SeqNum rounds = 30;
  const std::size_t n = net::SpanningTree::balanced_dary_size(d, h);
  for (const double pi : {1.0, 0.95, 0.9, 0.8, 0.7, 0.5}) {
    double alpha_sum = 0.0;
    double msgs_sum = 0.0;
    double global_sum = 0.0;
    const int kSeeds = 5;
    for (int s = 0; s < kSeeds; ++s) {
      const auto out =
          bench::run_pulse(d, h, rounds, pi, 42 + static_cast<unsigned>(s),
                           runner::DetectorKind::kHierarchical);
      alpha_sum += out.measured_alpha;
      msgs_sum += static_cast<double>(out.report_msgs);
      global_sum += static_cast<double>(out.global);
    }
    const double alpha_hat = alpha_sum / kSeeds;
    g_report.add("d" + std::to_string(d) + "h" + std::to_string(h) +
                     "_alpha_p" +
                     std::to_string(static_cast<int>(pi * 100.0 + 0.5)),
                 alpha_hat);
    const double expected_global =
        static_cast<double>(rounds) * std::pow(pi, static_cast<double>(n));
    t.add_row({TextTable::num(pi, 2), TextTable::num(alpha_hat, 3),
               TextTable::num(msgs_sum / kSeeds, 1),
               TextTable::num(analysis::hier_messages(d, h, rounds, alpha_hat),
                              1),
               TextTable::num(global_sum / kSeeds, 1),
               TextTable::num(expected_global, 1)});
  }
  t.print(std::cout);
  std::cout << '\n';
}

}  // namespace
}  // namespace hpd

int main() {
  hpd::sweep(2, 4);
  hpd::sweep(3, 3);
  hpd::per_level_table(2, 5, 0.9);
  hpd::per_level_table(2, 5, 0.7);
  hpd::g_report.write();
  return 0;
}
