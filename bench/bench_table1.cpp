// Table I reproduction: space / time / message complexity of hierarchical
// vs centralized repeated detection, measured from live simulation.
//
//   Space  — intervals stored (peak): the paper's O(p n²) both ways, but
//            distributed across nodes (hierarchical) vs concentrated at
//            the sink (centralized). We report the worst single node and
//            the system-wide sum.
//   Time   — vector-timestamp comparisons: O(d² p n²) distributed vs
//            O(p n³) at the sink.
//   Msgs   — one-hop reports (hierarchical) vs hop-weighted relays
//            (centralized): p·n vs Eq. (12).
//
// The shape claims validated here: the centralized sink's storage and
// comparison counts concentrate on one node and grow faster with n; the
// hierarchical per-node maxima stay near the per-subtree sizes; message
// totals favour the hierarchy for every h > 2.
#include <iostream>

#include "analysis/fit.hpp"
#include "analysis/formulas.hpp"
#include "bench/bench_util.hpp"
#include "metrics/report.hpp"

namespace hpd {
namespace {

bench::JsonReport g_report("bench_table1");

void run_table(SeqNum rounds, double participation) {
  std::cout << "== Table I (measured), p = " << rounds
            << " rounds, participation = " << participation << " ==\n";
  TextTable t({"d", "h", "n", "algo", "msgs", "cmp total", "cmp max-node",
               "store sum", "store max-node", "detections"});
  struct Shape {
    std::size_t d;
    std::size_t h;
  };
  for (const Shape s : {Shape{2, 3}, Shape{2, 5}, Shape{2, 7}, Shape{3, 4},
                        Shape{4, 3}, Shape{4, 4}}) {
    const auto cfg_seed = 1000 + s.d * 10 + s.h;
    for (const auto kind : {runner::DetectorKind::kHierarchical,
                            runner::DetectorKind::kCentralized}) {
      const auto cfg =
          bench::pulse_config(s.d, s.h, rounds, participation, cfg_seed, kind);
      const auto res = runner::run_experiment(cfg);
      std::uint64_t cmp_max = 0;
      for (std::size_t i = 0; i < cfg.topology.size(); ++i) {
        cmp_max = std::max(
            cmp_max, res.metrics.node(static_cast<ProcessId>(i)).vc_comparisons);
      }
      const bool hier = kind == runner::DetectorKind::kHierarchical;
      t.add_row({std::to_string(s.d), std::to_string(s.h),
                 std::to_string(cfg.topology.size()),
                 hier ? "hier" : "central",
                 std::to_string(res.metrics.msgs_of_type(
                     hier ? proto::kReportHier : proto::kReportCentral)),
                 std::to_string(res.metrics.total_vc_comparisons()),
                 std::to_string(cmp_max),
                 std::to_string(res.metrics.sum_node_storage_peak()),
                 std::to_string(res.metrics.max_node_storage_peak()),
                 std::to_string(res.global_count)});
    }
  }
  t.print(std::cout);
  std::cout << '\n';
}

void model_table() {
  std::cout << "== Table I (paper's asymptotic models, arbitrary units) ==\n";
  TextTable t({"d", "h", "n~d^h", "hier time O(d^2 p n^2)",
               "central time O(p n^3)", "space O(p n^2)", "hier msgs pn"});
  for (std::size_t d : {2u, 4u}) {
    for (std::size_t h : {3u, 5u, 7u}) {
      const auto n = static_cast<std::size_t>(analysis::paper_n(d, h));
      t.add_row({std::to_string(d), std::to_string(h), std::to_string(n),
                 TextTable::num(analysis::hier_time_model(d, n, 20), 0),
                 TextTable::num(analysis::central_time_model(n, 20), 0),
                 TextTable::num(analysis::space_model(n, 20), 0),
                 TextTable::num(20.0 * static_cast<double>(n), 0)});
    }
  }
  t.print(std::cout);
  std::cout << '\n';
}

}  // namespace
}  // namespace hpd

namespace hpd {
namespace {

// Measured growth exponents vs n over d = 2 trees (h = 3..8), fitted as
// y = c·n^k — the paper's asymptotic claims as numbers.
void exponent_table() {
  std::cout << "== Measured growth exponents over n (d = 2, h = 3..8, "
               "p = 10, full participation) ==\n";
  std::vector<double> ns;
  std::vector<double> hier_cmp_max;
  std::vector<double> central_cmp_max;
  std::vector<double> hier_msgs;
  std::vector<double> central_msgs;
  std::vector<double> central_store_max;
  for (std::size_t h = 3; h <= 8; ++h) {
    const std::size_t n = net::SpanningTree::balanced_dary_size(2, h);
    ns.push_back(static_cast<double>(n));
    for (const auto kind : {runner::DetectorKind::kHierarchical,
                            runner::DetectorKind::kCentralized}) {
      const auto cfg = bench::pulse_config(2, h, 10, 1.0, 777, kind);
      const auto res = runner::run_experiment(cfg);
      std::uint64_t cmp_max = 0;
      for (std::size_t i = 0; i < n; ++i) {
        cmp_max = std::max(
            cmp_max,
            res.metrics.node(static_cast<ProcessId>(i)).vc_comparisons);
      }
      if (kind == runner::DetectorKind::kHierarchical) {
        hier_cmp_max.push_back(static_cast<double>(cmp_max));
        hier_msgs.push_back(static_cast<double>(
            res.metrics.msgs_of_type(proto::kReportHier)));
      } else {
        central_cmp_max.push_back(static_cast<double>(cmp_max));
        central_msgs.push_back(static_cast<double>(
            res.metrics.msgs_of_type(proto::kReportCentral)));
        central_store_max.push_back(
            static_cast<double>(res.metrics.max_node_storage_peak()));
      }
    }
  }
  TextTable t({"quantity", "measured n-exponent", "R^2", "paper claim"});
  auto row = [&](const char* name, const char* slug,
                 const std::vector<double>& ys, const char* claim) {
    // Guard against flat curves (exponent 0 is a valid answer).
    std::vector<double> safe = ys;
    for (double& v : safe) {
      v = std::max(v, 1.0);
    }
    const auto fit = analysis::fit_power_law(ns, safe);
    t.add_row({name, TextTable::num(fit.exponent, 2),
               TextTable::num(fit.r_squared, 3), claim});
    g_report.add(std::string(slug) + "_n_exponent", fit.exponent);
  };
  row("hier worst-node comparisons", "hier_cmp_max", hier_cmp_max,
      "O(1) in n (d^2 p per node)");
  row("central sink comparisons", "central_cmp_max", central_cmp_max,
      "O(n^2) per p (O(pn^3)/n)");
  row("hier messages", "hier_msgs", hier_msgs, "O(n) (= pn)");
  row("central hop-messages", "central_msgs", central_msgs,
      "~O(n log n) (Eq. 12)");
  row("central sink storage peak", "central_store_max", central_store_max,
      "O(n) per round");
  t.print(std::cout);
  std::cout << '\n';
}

}  // namespace
}  // namespace hpd

int main() {
  hpd::model_table();
  hpd::run_table(/*rounds=*/15, /*participation=*/1.0);
  hpd::run_table(/*rounds=*/15, /*participation=*/0.8);
  hpd::exponent_table();
  hpd::g_report.write();
  return 0;
}
