// Detector-path microbenchmarks (google-benchmark): elimination-heavy queue
// traffic, reorder-buffer throughput under shuffled arrivals, and the
// centralized sink's per-round cost as the process count grows.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench/gbench_json.hpp"
#include "common/rng.hpp"
#include "detect/centralized.hpp"
#include "detect/queue_engine.hpp"
#include "detect/reorder.hpp"

namespace hpd {
namespace {

Interval base_interval(std::size_t n, ProcessId origin, SeqNum seq,
                       ClockValue base) {
  // The interval occupies the component window [base, base+1], slightly
  // widened on its own component so pairs are strictly ordered.
  Interval x;
  x.lo = VectorClock(n);
  x.hi = VectorClock(n);
  for (std::size_t i = 0; i < n; ++i) {
    x.lo[i] = base;
    x.hi[i] = base + 1;
  }
  x.lo[idx(origin)] -= 1;
  x.hi[idx(origin)] += 1;
  x.origin = origin;
  x.seq = seq;
  return x;
}

Interval window_interval(std::size_t n, ProcessId origin, SeqNum round,
                         bool /*unused*/ = false) {
  return base_interval(n, origin, round, static_cast<ClockValue>(2 * round));
}

/// Two queues forever out of phase (windows 6r vs 6r+3): every offer
/// eliminates the other stream's head and no solution ever forms — the
/// worst-case "failed attempt" path.
void BM_EliminationHeavy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  detect::QueueEngine engine;
  engine.add_queue(0);
  engine.add_queue(1);
  SeqNum round = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.offer(
        0, base_interval(n, 0, round, static_cast<ClockValue>(6 * round))));
    benchmark::DoNotOptimize(engine.offer(
        1,
        base_interval(n, 1, round, static_cast<ClockValue>(6 * round + 3))));
    ++round;
  }
  state.counters["eliminated"] = static_cast<double>(engine.eliminated());
  state.counters["solutions"] = static_cast<double>(engine.solutions_found());
}
BENCHMARK(BM_EliminationHeavy)->RangeMultiplier(4)->Range(16, 1024);

void BM_ReorderBufferShuffled(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  Rng rng(9);
  detect::ReorderBuffer rb;
  SeqNum base = 1;
  for (auto _ : state) {
    state.PauseTiming();
    rb.track(0, base);
    std::vector<SeqNum> seqs(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      seqs[i] = base + i;
    }
    for (std::size_t i = batch; i > 1; --i) {  // Fisher–Yates
      std::swap(seqs[i - 1], seqs[rng.uniform_index(i)]);
    }
    state.ResumeTiming();
    std::size_t delivered = 0;
    for (const SeqNum s : seqs) {
      Interval x;
      x.lo = VectorClock{static_cast<ClockValue>(s)};
      x.hi = VectorClock{static_cast<ClockValue>(s + 1)};
      x.origin = 0;
      x.seq = s;
      delivered += rb.push(0, x).size();
    }
    if (delivered != batch) {
      state.SkipWithError("reorder buffer lost intervals");
    }
    base += batch;
  }
}
BENCHMARK(BM_ReorderBufferShuffled)->RangeMultiplier(4)->Range(16, 1024);

/// One full round at the centralized sink: n queues each receive one
/// mutually overlapping interval; the sink detects and prunes.
void BM_CentralSinkRound(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<ProcessId> procs(n);
  for (std::size_t i = 0; i < n; ++i) {
    procs[i] = static_cast<ProcessId>(i);
  }
  std::uint64_t detections = 0;
  detect::CentralSink::Hooks hooks;
  hooks.on_occurrence = [&detections](const detect::OccurrenceRecord&) {
    ++detections;
  };
  detect::CentralSink sink(0, procs, std::move(hooks));
  SeqNum round = 1;
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      const Interval x =
          window_interval(n, static_cast<ProcessId>(i), round, false);
      if (i == 0) {
        sink.local_interval(x);
      } else {
        sink.report(x);
      }
    }
    ++round;
  }
  state.counters["detections"] = static_cast<double>(detections);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CentralSinkRound)->RangeMultiplier(2)->Range(4, 256)->Complexity();

}  // namespace
}  // namespace hpd

int main(int argc, char** argv) {
  return hpd::bench::gbench_json_main("bench_detector", argc, argv);
}
