// Wire-volume experiment (extension): the paper counts message size in
// O(n) vector-clock units. This bench measures what those units cost in
// bytes under three encodings of the timestamp streams of a real simulated
// run: raw fixed 4 B/component, LEB128 varints, and per-channel
// differential encoding (Singhal–Kshemkalyani).
#include <cstdint>
#include <iostream>
#include <map>

#include "bench/bench_util.hpp"
#include "trace/gossip.hpp"
#include "metrics/report.hpp"
#include "wire/delta_clock.hpp"

namespace hpd {
namespace {

void measure_execution(const char* label,
                       const runner::ExperimentConfig& cfg_in) {
  auto cfg = cfg_in;
  cfg.record_execution = true;
  const auto res = runner::run_experiment(cfg);
  const std::size_t n = cfg.topology.size();

  // Reconstruct each (src, dst) channel's stamp stream from the recorded
  // send events, in send order.
  std::map<std::pair<ProcessId, ProcessId>, std::vector<const VectorClock*>>
      channels;
  for (std::size_t p = 0; p < n; ++p) {
    for (const auto& e : res.execution.procs[p].events) {
      if (e.kind == trace::EventKind::kSend) {
        channels[{static_cast<ProcessId>(p), e.peer}].push_back(&e.vc);
      }
    }
  }

  std::uint64_t stamps = 0;
  std::uint64_t raw_bytes = 0;
  std::uint64_t varint_bytes = 0;
  std::uint64_t delta_bytes = 0;
  for (const auto& [channel, stream] : channels) {
    wire::DeltaClockEncoder delta(n, 64);
    for (const VectorClock* vc : stream) {
      ++stamps;
      raw_bytes += 4 * vc->size();
      wire::Encoder e;
      e.put_clock(*vc);
      varint_bytes += e.bytes().size();
      delta_bytes += delta.encode(*vc).size();
    }
  }

  TextTable t({"encoding", "bytes", "bytes/stamp", "vs raw"});
  auto row = [&](const char* name, std::uint64_t bytes) {
    t.add_row({name, std::to_string(bytes),
               TextTable::num(static_cast<double>(bytes) /
                                  static_cast<double>(stamps),
                              1),
               TextTable::num(static_cast<double>(raw_bytes) /
                                  static_cast<double>(bytes),
                              2)});
  };
  std::cout << "-- " << label << " (n=" << n << "): " << stamps
            << " app-message timestamps over " << channels.size()
            << " channels --\n";
  row("raw 4B/component", raw_bytes);
  row("LEB128 varint", varint_bytes);
  row("SK differential", delta_bytes);
  t.print(std::cout);
  std::cout << '\n';
}

}  // namespace
}  // namespace hpd

int main() {
  using namespace hpd;
  std::cout << "== Vector-timestamp wire volume under three encodings ==\n\n";
  measure_execution(
      "pulse d=2 h=4",
      bench::pulse_config(2, 4, 15, 1.0, 7,
                          runner::DetectorKind::kHierarchical));
  measure_execution(
      "pulse d=2 h=6",
      bench::pulse_config(2, 6, 15, 1.0, 7,
                          runner::DetectorKind::kHierarchical));
  // Sparse-causality workload: between two sends on one channel only a few
  // components move — the differential technique's home turf.
  {
    runner::ExperimentConfig cfg;
    cfg.topology = net::Topology::grid(6, 6);
    cfg.tree = net::SpanningTree::bfs_tree(cfg.topology, 0);
    trace::GossipConfig g;
    g.horizon = 1500.0;
    g.mean_gap = 4.0;
    g.p_send = 0.6;
    g.p_toggle = 0.2;
    cfg.behavior_factory = [g](ProcessId) {
      return std::make_unique<trace::GossipBehavior>(g);
    };
    cfg.horizon = 1520.0;
    cfg.seed = 7;
    measure_execution("gossip 6x6 grid", cfg);
  }
  std::cout
      << "Reading the numbers: on globally-synchronized workloads (pulse)\n"
         "nearly every component moves between consecutive sends, so dense\n"
         "deltas (2 varints per changed component) lose to plain varint\n"
         "clocks. On sparse-causality traffic (gossip) the differential\n"
         "encoding pulls far ahead. The encoder needs FIFO channels per\n"
         "the original technique; the periodic resync (every 64 stamps)\n"
         "bounds decoder-state loss in long deployments.\n";
  return 0;
}
