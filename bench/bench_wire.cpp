// Wire-volume experiment (extension): the paper counts message size in
// O(n) vector-clock units. This bench measures what those units cost in
// bytes under three encodings of the timestamp streams of a real simulated
// run: raw fixed 4 B/component, LEB128 varints, and per-channel
// differential encoding (Singhal–Kshemkalyani) — plus, for the interval
// payloads the detection protocol actually ships, the v1 encoding against
// the v2 delta and batch encodings (docs/PROTOCOL.md).
#include <cstdint>
#include <iostream>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "interval/interval.hpp"
#include "metrics/report.hpp"
#include "trace/gossip.hpp"
#include "wire/codec.hpp"
#include "wire/delta_clock.hpp"

namespace hpd {
namespace {

bench::JsonReport g_report("bench_wire");

void measure_execution(const char* label, const char* slug,
                       const runner::ExperimentConfig& cfg_in) {
  auto cfg = cfg_in;
  cfg.record_execution = true;
  const auto res = runner::run_experiment(cfg);
  const std::size_t n = cfg.topology.size();

  // Reconstruct each (src, dst) channel's stamp stream from the recorded
  // send events, in send order.
  std::map<std::pair<ProcessId, ProcessId>, std::vector<const VectorClock*>>
      channels;
  for (std::size_t p = 0; p < n; ++p) {
    for (const auto& e : res.execution.procs[p].events) {
      if (e.kind == trace::EventKind::kSend) {
        channels[{static_cast<ProcessId>(p), e.peer}].push_back(&e.vc);
      }
    }
  }

  std::uint64_t stamps = 0;
  std::uint64_t raw_bytes = 0;
  std::uint64_t varint_bytes = 0;
  std::uint64_t delta_bytes = 0;
  for (const auto& [channel, stream] : channels) {
    wire::DeltaClockEncoder delta(n, 64);
    for (const VectorClock* vc : stream) {
      ++stamps;
      raw_bytes += 4 * vc->size();
      wire::Encoder e;
      e.put_clock(*vc);
      varint_bytes += e.bytes().size();
      delta_bytes += delta.encode(*vc).size();
    }
  }

  TextTable t({"encoding", "bytes", "bytes/stamp", "vs raw"});
  auto row = [&](const char* name, const char* metric, std::uint64_t bytes) {
    const double per_stamp =
        static_cast<double>(bytes) / static_cast<double>(stamps);
    g_report.add(std::string(slug) + "_" + metric + "_bytes_per_stamp",
                 per_stamp);
    t.add_row({name, std::to_string(bytes), TextTable::num(per_stamp, 1),
               TextTable::num(static_cast<double>(raw_bytes) /
                                  static_cast<double>(bytes),
                              2)});
  };
  std::cout << "-- " << label << " (n=" << n << "): " << stamps
            << " app-message timestamps over " << channels.size()
            << " channels --\n";
  row("raw 4B/component", "raw", raw_bytes);
  row("LEB128 varint", "varint", varint_bytes);
  row("SK differential", "sk", delta_bytes);
  t.print(std::cout);
  std::cout << '\n';
}

/// Interval payload volume on the protocol's common case: slowly-advancing
/// clocks, where consecutive intervals from one origin move every component
/// by only a few ticks and `hi` sits close to `lo`. This is the workload
/// the v2 delta / batch encodings (codec flags bit kDeltaIntervals) target.
void measure_interval_encodings() {
  constexpr std::size_t kN = 64;
  constexpr std::size_t kIntervals = 1024;
  constexpr std::size_t kBatch = 16;  // one report frame's worth

  Rng rng(11);
  std::vector<Interval> stream;
  VectorClock cursor(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    // Mid-life deployment: multi-byte varint components.
    cursor[i] = static_cast<ClockValue>(
        (1u << 20) + static_cast<ClockValue>(rng.uniform_int(0, 1 << 18)));
  }
  for (std::size_t k = 0; k < kIntervals; ++k) {
    Interval x;
    x.lo = cursor;
    x.hi = cursor;
    for (std::size_t i = 0; i < kN; ++i) {
      x.hi[i] += static_cast<ClockValue>(rng.uniform_int(0, 3));
    }
    x.origin = 3;
    x.seq = static_cast<SeqNum>(k + 1);
    stream.push_back(x);
    cursor = x.hi;
    for (std::size_t i = 0; i < kN; ++i) {
      cursor[i] += static_cast<ClockValue>(rng.uniform_int(0, 2));
    }
  }

  std::uint64_t v1_bytes = 0;
  std::uint64_t delta_bytes = 0;
  std::uint64_t batch_bytes = 0;
  for (const Interval& x : stream) {
    wire::Encoder v1(wire::WireFormat::kV1);
    v1.put_interval(x);
    v1_bytes += v1.bytes().size();
    wire::Encoder delta(wire::WireFormat::kDelta);
    delta.put_interval(x);
    delta_bytes += delta.bytes().size();
  }
  for (std::size_t k = 0; k < kIntervals; k += kBatch) {
    batch_bytes += wire::encode_interval_batch(
                       std::span<const Interval>(stream).subspan(k, kBatch))
                       .size();
  }

  TextTable t({"interval encoding", "bytes", "bytes/interval", "vs v1"});
  auto row = [&](const char* name, const char* metric, std::uint64_t bytes) {
    const double per_interval =
        static_cast<double>(bytes) / static_cast<double>(kIntervals);
    g_report.add(std::string("interval_") + metric + "_bytes_per_interval",
                 per_interval);
    t.add_row({name, std::to_string(bytes), TextTable::num(per_interval, 1),
               TextTable::num(static_cast<double>(v1_bytes) /
                                  static_cast<double>(bytes),
                              2)});
  };
  std::cout << "-- interval payloads, slowly-advancing clocks (n=" << kN
            << ", " << kIntervals << " intervals, batches of " << kBatch
            << ") --\n";
  row("v1 (two varint clocks)", "v1", v1_bytes);
  row("v2 delta (hi rel. lo)", "delta", delta_bytes);
  row("v2 batch (rel. predecessor)", "batch16", batch_bytes);
  t.print(std::cout);
  std::cout << '\n';
}

}  // namespace
}  // namespace hpd

int main() {
  using namespace hpd;
  std::cout << "== Vector-timestamp wire volume under three encodings ==\n\n";
  measure_execution(
      "pulse d=2 h=4", "pulse_d2_h4",
      bench::pulse_config(2, 4, 15, 1.0, 7,
                          runner::DetectorKind::kHierarchical));
  measure_execution(
      "pulse d=2 h=6", "pulse_d2_h6",
      bench::pulse_config(2, 6, 15, 1.0, 7,
                          runner::DetectorKind::kHierarchical));
  // Sparse-causality workload: between two sends on one channel only a few
  // components move — the differential technique's home turf.
  {
    runner::ExperimentConfig cfg;
    cfg.topology = net::Topology::grid(6, 6);
    cfg.tree = net::SpanningTree::bfs_tree(cfg.topology, 0);
    trace::GossipConfig g;
    g.horizon = 1500.0;
    g.mean_gap = 4.0;
    g.p_send = 0.6;
    g.p_toggle = 0.2;
    cfg.behavior_factory = [g](ProcessId) {
      return std::make_unique<trace::GossipBehavior>(g);
    };
    cfg.horizon = 1520.0;
    cfg.seed = 7;
    measure_execution("gossip 6x6 grid", "gossip_6x6", cfg);
  }
  measure_interval_encodings();
  std::cout
      << "Reading the numbers: on globally-synchronized workloads (pulse)\n"
         "nearly every component moves between consecutive sends, so dense\n"
         "deltas (2 varints per changed component) lose to plain varint\n"
         "clocks. On sparse-causality traffic (gossip) the differential\n"
         "encoding pulls far ahead. The encoder needs FIFO channels per\n"
         "the original technique; the periodic resync (every 64 stamps)\n"
         "bounds decoder-state loss in long deployments. For interval\n"
         "payloads the v2 delta/batch encodings win whenever clocks advance\n"
         "slowly between consecutive intervals — the steady detection case.\n";
  hpd::g_report.write();
  return 0;
}
