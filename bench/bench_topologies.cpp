// Topology-sensitivity experiment (extension): the paper analyses balanced
// d-ary trees; real deployments get whatever BFS gives them over grids,
// radio ranges, small worlds, or scale-free graphs. This bench measures
// both algorithms over the tree each topology family induces.
#include <iostream>

#include "bench/bench_util.hpp"
#include "metrics/report.hpp"
#include "net/spanning_tree.hpp"
#include "net/topology.hpp"
#include "proto/messages.hpp"
#include "runner/experiment.hpp"
#include "trace/pulse.hpp"

namespace hpd {
namespace {

bench::JsonReport g_report("bench_topologies");

struct Family {
  const char* name;
  const char* slug;
  net::Topology topo;
};

void run_family(const Family& fam, SeqNum rounds) {
  net::SpanningTree tree = net::SpanningTree::bfs_tree(fam.topo, 0);
  TextTable t({"algo", "report msgs", "cmp max-node", "store max-node",
               "detections"});
  for (const auto kind : {runner::DetectorKind::kHierarchical,
                          runner::DetectorKind::kCentralized}) {
    runner::ExperimentConfig cfg;
    cfg.topology = fam.topo;
    cfg.tree = tree;
    trace::PulseConfig pc;
    pc.rounds = rounds;
    pc.period = 80.0;
    cfg.behavior_factory = [pc](ProcessId) {
      return std::make_unique<trace::PulseBehavior>(pc);
    };
    cfg.horizon = 5.0 + static_cast<SimTime>(rounds) * 80.0 + 80.0;
    cfg.drain = 120.0;
    cfg.seed = 4242;
    cfg.detector = kind;
    cfg.keep_occurrence_records = false;
    const auto res = runner::run_experiment(cfg);
    std::uint64_t cmp_max = 0;
    for (std::size_t i = 0; i < fam.topo.size(); ++i) {
      cmp_max = std::max(
          cmp_max,
          res.metrics.node(static_cast<ProcessId>(i)).vc_comparisons);
    }
    const bool hier = kind == runner::DetectorKind::kHierarchical;
    g_report.add(std::string(fam.slug) + (hier ? "_hier" : "_central") +
                     "_report_msgs",
                 static_cast<double>(res.metrics.msgs_of_type(
                     hier ? proto::kReportHier : proto::kReportCentral)));
    t.add_row({hier ? "hier" : "central",
               std::to_string(res.metrics.msgs_of_type(
                   hier ? proto::kReportHier : proto::kReportCentral)),
               std::to_string(cmp_max),
               std::to_string(res.metrics.max_node_storage_peak()),
               std::to_string(res.global_count)});
  }
  std::cout << "-- " << fam.name << ": n=" << fam.topo.size()
            << " edges=" << fam.topo.num_edges()
            << " BFS-tree height=" << tree.height() << " max-degree="
            << tree.max_degree() << "\n";
  t.print(std::cout);
  std::cout << '\n';
}

}  // namespace
}  // namespace hpd

int main() {
  using namespace hpd;
  std::cout << "== Hierarchical vs centralized across topology families "
               "(15 pulse rounds, full participation) ==\n\n";
  Rng rng(31);
  std::vector<Family> families;
  families.push_back({"grid 6x6", "grid6x6", net::Topology::grid(6, 6)});
  families.push_back(
      {"random geometric n=36 r=0.25", "geom36",
       net::Topology::random_geometric(36, 0.25, rng)});
  families.push_back(
      {"small world n=36 k=4 beta=0.2", "smallworld36",
       net::Topology::small_world(36, 4, 0.2, rng)});
  families.push_back({"scale free n=36 m=2", "scalefree36",
                      net::Topology::scale_free(36, 2, rng)});
  families.push_back({"ring n=36", "ring36", net::Topology::ring(36)});
  for (const auto& fam : families) {
    run_family(fam, 15);
  }
  std::cout << "Shallow, hub-heavy trees (scale-free) narrow the message\n"
               "gap but concentrate the centralized sink's comparisons even\n"
               "harder; deep trees (ring) are the hierarchy's best case.\n";
  g_report.write();
  return 0;
}
