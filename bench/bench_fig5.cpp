// Figure 5 reproduction: as Figure 4 but with tree degree d = 4.
// See bench_fig4.cpp for methodology notes.
#include <iostream>
#include <string>

#include "analysis/formulas.hpp"
#include "bench/bench_util.hpp"
#include "metrics/report.hpp"

namespace hpd {
namespace {

bool g_csv = false;  // --csv: machine-readable output for re-plotting
bench::JsonReport g_report("bench_fig5");

void analytic_part() {
  std::cout << "== Figure 5: total messages vs tree height (analytic), "
               "d = 4, p = 20 ==\n";
  TextTable t({"h", "n=(d^h-1)/(d-1)", "hier a=0.10", "hier a=0.45",
               "central (Eq.12 sum)", "central (Eq.14 as printed)",
               "ratio central/hier(a=0.45)"});
  for (std::size_t h = 2; h <= 10; ++h) {
    const double h010 = analysis::hier_messages(4, h, 20, 0.10);
    const double h045 = analysis::hier_messages(4, h, 20, 0.45);
    const double c = analysis::central_messages_direct(4, h, 20);
    const double c14 = analysis::central_messages_paper_eq14(4, h, 20);
    t.add_row({std::to_string(h),
               std::to_string(analysis::paper_tree_nodes(4, h)),
               TextTable::num(h010, 0), TextTable::num(h045, 0),
               TextTable::num(c, 0), TextTable::num(c14, 0),
               TextTable::num(c / h045, 2)});
  }
  g_csv ? t.print_csv(std::cout) : t.print(std::cout);
  std::cout << '\n';
}

void simulated_part() {
  std::cout << "== Live simulation check (full participation -> alpha = "
               "1/4, p = 10 rounds) ==\n";
  TextTable t({"h", "n", "hier msgs (sim)", "Eq.11(a=1/d)",
               "central hop-msgs (sim)", "Eq.12", "alpha measured",
               "detections"});
  for (std::size_t h = 2; h <= 5; ++h) {
    const auto hier = bench::run_pulse(4, h, 10, 1.0, 555 + h,
                                       runner::DetectorKind::kHierarchical);
    const auto central = bench::run_pulse(4, h, 10, 1.0, 555 + h,
                                          runner::DetectorKind::kCentralized);
    const double model_h = analysis::hier_messages(4, h, 10, 0.25);
    const double model_c = analysis::central_messages_direct(4, h, 10);
    if (h == 5) {
      g_report.add("sim_h5_hier_msgs",
                   static_cast<double>(hier.report_msgs));
      g_report.add("sim_h5_central_msgs",
                   static_cast<double>(central.report_msgs));
      g_report.add("sim_h5_alpha", hier.measured_alpha);
    }
    t.add_row({std::to_string(h),
               std::to_string(analysis::paper_tree_nodes(4, h)),
               std::to_string(hier.report_msgs), TextTable::num(model_h, 0),
               std::to_string(central.report_msgs),
               TextTable::num(model_c, 0),
               TextTable::num(hier.measured_alpha, 3),
               std::to_string(hier.global)});
  }
  g_csv ? t.print_csv(std::cout) : t.print(std::cout);
  std::cout << '\n';
}

}  // namespace
}  // namespace hpd

int main(int argc, char** argv) {
  hpd::g_csv = argc > 1 && std::string(argv[1]) == "--csv";
  hpd::analytic_part();
  hpd::simulated_part();
  hpd::g_report.write();
  return 0;
}
