// Figure 4 reproduction: message complexity of hierarchical vs centralized
// repeated detection, d = 2, p = 20, α ∈ {0.1, 0.45}, as a function of the
// tree height h.
//
// Part 1 regenerates the figure's analytic curves (Eq. (11) vs the
// centralized model). The centralized curve uses the direct sum of Eq. (12)
// — the authoritative model — because the closed form printed as Eq. (14)
// contains an algebra slip (documented in EXPERIMENTS.md); the printed form
// is shown alongside for comparison.
//
// Part 2 validates the models against the live simulator: with full round
// participation every internal node aggregates each batch of d child
// reports (α = 1/d), and the measured message counts must equal the models
// exactly.
#include <cstdio>
#include <iostream>
#include <string>

#include "analysis/formulas.hpp"
#include "bench/bench_util.hpp"
#include "metrics/report.hpp"

namespace hpd {
namespace {

bool g_csv = false;  // --csv: machine-readable output for re-plotting
bench::JsonReport g_report("bench_fig4");

void analytic_part(std::size_t d, std::size_t p) {
  std::cout << "== Figure " << (d == 2 ? 4 : 5)
            << ": total messages vs tree height (analytic), d = " << d
            << ", p = " << p << " ==\n";
  TextTable t({"h", "n=(d^h-1)/(d-1)", "hier a=0.10", "hier a=0.45",
               "central (Eq.12 sum)", "central (Eq.14 as printed)",
               "ratio central/hier(a=0.45)"});
  for (std::size_t h = 2; h <= 14; ++h) {
    const double h010 = analysis::hier_messages(d, h, p, 0.10);
    const double h045 = analysis::hier_messages(d, h, p, 0.45);
    const double c = analysis::central_messages_direct(d, h, p);
    const double c14 = analysis::central_messages_paper_eq14(d, h, p);
    t.add_row({std::to_string(h),
               std::to_string(analysis::paper_tree_nodes(d, h)),
               TextTable::num(h010, 0), TextTable::num(h045, 0),
               TextTable::num(c, 0), TextTable::num(c14, 0),
               TextTable::num(c / h045, 2)});
  }
  g_csv ? t.print_csv(std::cout) : t.print(std::cout);
  std::cout << '\n';
}

void simulated_part(std::size_t d, std::size_t max_h, SeqNum rounds) {
  std::cout << "== Live simulation check (full participation -> alpha = 1/d"
               ", p = "
            << rounds << " rounds) ==\n";
  TextTable t({"h", "n", "hier msgs (sim)", "Eq.11(a=1/d)", "central hop-msgs (sim)",
               "Eq.12", "alpha measured", "detections"});
  for (std::size_t h = 2; h <= max_h; ++h) {
    const auto hier = bench::run_pulse(d, h, rounds, 1.0, 1234 + h,
                                       runner::DetectorKind::kHierarchical);
    const auto central = bench::run_pulse(d, h, rounds, 1.0, 1234 + h,
                                          runner::DetectorKind::kCentralized);
    const double model_h =
        analysis::hier_messages(d, h, rounds, 1.0 / static_cast<double>(d));
    const double model_c = analysis::central_messages_direct(d, h, rounds);
    if (h == max_h) {
      g_report.add("sim_h" + std::to_string(h) + "_hier_msgs",
                   static_cast<double>(hier.report_msgs));
      g_report.add("sim_h" + std::to_string(h) + "_central_msgs",
                   static_cast<double>(central.report_msgs));
      g_report.add("sim_h" + std::to_string(h) + "_alpha",
                   hier.measured_alpha);
    }
    t.add_row({std::to_string(h),
               std::to_string(analysis::paper_tree_nodes(d, h)),
               std::to_string(hier.report_msgs), TextTable::num(model_h, 0),
               std::to_string(central.report_msgs),
               TextTable::num(model_c, 0),
               TextTable::num(hier.measured_alpha, 3),
               std::to_string(hier.global)});
  }
  g_csv ? t.print_csv(std::cout) : t.print(std::cout);
  std::cout << '\n';
}

void partial_part(std::size_t d, std::size_t max_h, SeqNum rounds) {
  std::cout << "== Partial participation (pi = 0.7): lower alpha, fewer "
               "aggregate messages ==\n";
  TextTable t({"h", "hier msgs (sim)", "Eq.11(alpha-hat)", "alpha measured",
               "global detections"});
  for (std::size_t h = 2; h <= max_h; ++h) {
    const auto hier = bench::run_pulse(d, h, rounds, 0.7, 99 + h,
                                       runner::DetectorKind::kHierarchical);
    const double model = analysis::hier_messages(
        d, h, rounds, hier.measured_alpha);
    if (h == max_h) {
      g_report.add("partial_h" + std::to_string(h) + "_alpha",
                   hier.measured_alpha);
      g_report.add("partial_h" + std::to_string(h) + "_hier_msgs",
                   static_cast<double>(hier.report_msgs));
    }
    t.add_row({std::to_string(h), std::to_string(hier.report_msgs),
               TextTable::num(model, 0),
               TextTable::num(hier.measured_alpha, 3),
               std::to_string(hier.global)});
  }
  g_csv ? t.print_csv(std::cout) : t.print(std::cout);
  std::cout << '\n';
}

}  // namespace
}  // namespace hpd

int main(int argc, char** argv) {
  hpd::g_csv = argc > 1 && std::string(argv[1]) == "--csv";
  hpd::analytic_part(2, 20);
  hpd::simulated_part(2, 7, 20);
  hpd::partial_part(2, 7, 20);
  hpd::g_report.write();
  return 0;
}
