// Microbenchmarks (google-benchmark) of the hot primitives: vector-clock
// comparison/merge/meet/join, interval overlap, aggregation, and the queue
// engine's offer path.
//
// The *Baseline kernels run the frozen pre-optimization implementations
// from tests/reference/ through the identical workload, so the committed
// BENCH_bench_micro_baseline.json snapshot is an honest same-harness
// pre-PR measurement (see docs/PERFORMANCE.md).
#include <benchmark/benchmark.h>

#include <utility>
#include <vector>

#include "bench/gbench_json.hpp"
#include "common/rng.hpp"
#include "detect/queue_engine.hpp"
#include "interval/interval.hpp"
#include "reference/interval.hpp"
#include "reference/queue_engine.hpp"
#include "reference/vector_clock.hpp"
#include "vc/vector_clock.hpp"

namespace hpd {
namespace {

VectorClock random_clock(Rng& rng, std::size_t n) {
  VectorClock v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<ClockValue>(rng.uniform_int(0, 1000));
  }
  return v;
}

void BM_VcCompare(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const VectorClock a = random_clock(rng, n);
  const VectorClock b = random_clock(rng, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compare(a, b));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_VcCompare)->RangeMultiplier(4)->Range(8, 4096)->Complexity();

void BM_VcMerge(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  VectorClock a = random_clock(rng, n);
  const VectorClock b = random_clock(rng, n);
  for (auto _ : state) {
    a.merge(b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_VcMerge)->RangeMultiplier(4)->Range(8, 4096);

void BM_VcMeetJoin(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  const VectorClock a = random_clock(rng, n);
  const VectorClock b = random_clock(rng, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(component_min(a, b));
    benchmark::DoNotOptimize(component_max(a, b));
  }
}
BENCHMARK(BM_VcMeetJoin)->RangeMultiplier(4)->Range(8, 4096);

reference::VectorClock to_reference_clock(const VectorClock& v) {
  reference::VectorClock out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    out[i] = v[i];
  }
  return out;
}

// Frozen-seed twin of BM_VcMeetJoin (same seed, identical inputs) across
// the full width range: the perf-smoke same-run gate diffs the SIMD
// meet/join against this at every n, including 1024 and 4096.
void BM_VcMeetJoinBaseline(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  const reference::VectorClock a = to_reference_clock(random_clock(rng, n));
  const reference::VectorClock b = to_reference_clock(random_clock(rng, n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(reference::component_min(a, b));
    benchmark::DoNotOptimize(reference::component_max(a, b));
  }
}
BENCHMARK(BM_VcMeetJoinBaseline)->RangeMultiplier(4)->Range(8, 4096);

Interval random_interval(Rng& rng, std::size_t n, ProcessId origin,
                         SeqNum seq) {
  Interval x;
  x.lo = random_clock(rng, n);
  x.hi = x.lo;
  for (std::size_t i = 0; i < n; ++i) {
    x.hi[i] += static_cast<ClockValue>(rng.uniform_int(0, 50));
  }
  x.origin = origin;
  x.seq = seq;
  return x;
}

void BM_IntervalOverlap(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  const Interval a = random_interval(rng, n, 0, 1);
  const Interval b = random_interval(rng, n, 1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(overlap(a, b));
  }
}
BENCHMARK(BM_IntervalOverlap)->RangeMultiplier(4)->Range(8, 4096);

void BM_Aggregate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t k = 8;  // intervals per aggregation (d + 1 heads)
  Rng rng(5);
  std::vector<Interval> xs;
  for (std::size_t i = 0; i < k; ++i) {
    xs.push_back(random_interval(rng, n, static_cast<ProcessId>(i), 1));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        aggregate(std::span<const Interval>(xs), 99, 1));
  }
}
BENCHMARK(BM_Aggregate)->RangeMultiplier(4)->Range(8, 4096);

// Frozen-seed twin of BM_Aggregate (same seed and fan-in, identical
// inputs) for the same-run gate — reference::aggregate is the pre-SIMD
// Eqs. (5)/(6) combine.
void BM_AggregateBaseline(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t k = 8;
  Rng rng(5);
  std::vector<reference::Interval> xs;
  for (std::size_t i = 0; i < k; ++i) {
    const Interval x = random_interval(rng, n, static_cast<ProcessId>(i), 1);
    reference::Interval rx;
    rx.lo = to_reference_clock(x.lo);
    rx.hi = to_reference_clock(x.hi);
    rx.origin = x.origin;
    rx.seq = x.seq;
    xs.push_back(std::move(rx));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(reference::aggregate(
        std::span<const reference::Interval>(xs), 99, 1));
  }
}
BENCHMARK(BM_AggregateBaseline)->RangeMultiplier(4)->Range(8, 4096);

/// Full queue-engine round trip: d+1 queues fed one mutually-overlapping
/// interval each -> one solution detected and pruned per batch.
void BM_QueueEngineSolve(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 64;
  SeqNum round = 1;
  detect::QueueEngine engine;
  for (std::size_t q = 0; q <= d; ++q) {
    engine.add_queue(static_cast<ProcessId>(q));
  }
  for (auto _ : state) {
    // Construct one round of overlapping intervals: every lo is below every
    // hi (component-wise window [round*2, round*2+1]).
    for (std::size_t q = 0; q <= d; ++q) {
      Interval x;
      x.lo = VectorClock(n);
      x.hi = VectorClock(n);
      for (std::size_t i = 0; i < n; ++i) {
        x.lo[i] = static_cast<ClockValue>(round * 2);
        x.hi[i] = static_cast<ClockValue>(round * 2 + 1);
      }
      x.lo[q] -= 1;  // make the pairs strictly ordered
      x.hi[q] += 1;
      x.origin = static_cast<ProcessId>(q);
      x.seq = round;
      const auto sols = engine.offer(static_cast<ProcessId>(q), x);
      benchmark::DoNotOptimize(sols);
    }
    ++round;
  }
  state.counters["solutions"] =
      static_cast<double>(engine.solutions_found());
}
BENCHMARK(BM_QueueEngineSolve)->DenseRange(2, 10, 2);

// ---- Offer throughput: optimized engine vs frozen seed engine --------------

constexpr std::size_t kOfferQueues = 4;
constexpr std::size_t kOfferPool = 1024;  // intervals regenerated per refill

/// Rebuild the pool in place: per round, one interval per queue with
/// mutually overlapping windows (as in BM_QueueEngineSolve), so every
/// kOfferQueues-th offer completes a round, detects one solution, and
/// prunes all heads — storage stays bounded.
template <typename IntervalT, typename ClockT>
void refill_offer_pool(std::vector<IntervalT>& pool, std::size_t n,
                       SeqNum& round) {
  for (std::size_t j = 0; j < pool.size(); ++round) {
    for (std::size_t q = 0; q < kOfferQueues; ++q, ++j) {
      IntervalT& x = pool[j];
      x.lo = ClockT(n);
      x.hi = ClockT(n);
      for (std::size_t i = 0; i < n; ++i) {
        x.lo[i] = static_cast<ClockValue>(round * 2);
        x.hi[i] = static_cast<ClockValue>(round * 2 + 1);
      }
      x.lo[q] -= 1;  // strictly ordered pairs
      x.hi[q] += 1;
      x.origin = static_cast<ProcessId>(q);
      x.seq = round;
    }
  }
}

/// Steady-state offer throughput at clock width n. One benchmark iteration
/// = one offer() (payload pre-built outside the timed region, as in the
/// real system where intervals arrive decoded off the wire) including its
/// share of detection, solution extraction, and pruning.
template <typename Engine, typename IntervalT, typename ClockT>
void offer_throughput(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Engine engine;
  for (std::size_t q = 0; q < kOfferQueues; ++q) {
    engine.add_queue(static_cast<ProcessId>(q));
  }
  SeqNum round = 1;
  std::vector<IntervalT> pool(kOfferPool);
  refill_offer_pool<IntervalT, ClockT>(pool, n, round);
  std::size_t k = 0;
  for (auto _ : state) {
    if (k == pool.size()) {
      state.PauseTiming();
      refill_offer_pool<IntervalT, ClockT>(pool, n, round);
      k = 0;
      state.ResumeTiming();
    }
    const ProcessId key = pool[k].origin;
    benchmark::DoNotOptimize(engine.offer(key, std::move(pool[k])));
    ++k;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["solutions"] =
      static_cast<double>(engine.solutions_found());
}

void BM_OfferThroughput(benchmark::State& state) {
  offer_throughput<detect::QueueEngine, Interval, VectorClock>(state);
}
BENCHMARK(BM_OfferThroughput)->Arg(8)->Arg(64)->Arg(256);

void BM_OfferThroughputBaseline(benchmark::State& state) {
  offer_throughput<reference::detect::QueueEngine, reference::Interval,
                   reference::VectorClock>(state);
}
BENCHMARK(BM_OfferThroughputBaseline)->Arg(8)->Arg(64)->Arg(256);

// ---- Aggregate throughput: span ⊓ over a fan-in of 8 ----------------------

reference::Interval to_reference(const Interval& x) {
  reference::Interval out;
  out.lo = reference::VectorClock(x.lo.size());
  out.hi = reference::VectorClock(x.hi.size());
  for (std::size_t i = 0; i < x.lo.size(); ++i) {
    out.lo[i] = x.lo[i];
    out.hi[i] = x.hi[i];
  }
  out.origin = x.origin;
  out.seq = x.seq;
  out.weight = x.weight;
  return out;
}

std::vector<Interval> aggregate_inputs(std::size_t n) {
  Rng rng(6);
  std::vector<Interval> xs;
  for (std::size_t i = 0; i < 8; ++i) {  // d + 1 heads at fan-out 7
    xs.push_back(random_interval(rng, n, static_cast<ProcessId>(i), 1));
  }
  return xs;
}

void BM_AggregateThroughput(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<Interval> xs = aggregate_inputs(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        aggregate(std::span<const Interval>(xs), 99, 1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AggregateThroughput)->Arg(8)->Arg(64)->Arg(256);

void BM_AggregateThroughputBaseline(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<reference::Interval> xs;
  for (const Interval& x : aggregate_inputs(n)) {  // identical inputs
    xs.push_back(to_reference(x));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(reference::aggregate(
        std::span<const reference::Interval>(xs), 99, 1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AggregateThroughputBaseline)->Arg(8)->Arg(64)->Arg(256);

}  // namespace
}  // namespace hpd

int main(int argc, char** argv) {
  return hpd::bench::gbench_json_main("bench_micro", argc, argv);
}
