// Microbenchmarks (google-benchmark) of the hot primitives: vector-clock
// comparison/merge/meet/join, interval overlap, aggregation, and the queue
// engine's offer path.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "detect/queue_engine.hpp"
#include "interval/interval.hpp"
#include "vc/vector_clock.hpp"

namespace hpd {
namespace {

VectorClock random_clock(Rng& rng, std::size_t n) {
  VectorClock v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<ClockValue>(rng.uniform_int(0, 1000));
  }
  return v;
}

void BM_VcCompare(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const VectorClock a = random_clock(rng, n);
  const VectorClock b = random_clock(rng, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compare(a, b));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_VcCompare)->RangeMultiplier(4)->Range(8, 4096)->Complexity();

void BM_VcMerge(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  VectorClock a = random_clock(rng, n);
  const VectorClock b = random_clock(rng, n);
  for (auto _ : state) {
    a.merge(b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_VcMerge)->RangeMultiplier(4)->Range(8, 4096);

void BM_VcMeetJoin(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  const VectorClock a = random_clock(rng, n);
  const VectorClock b = random_clock(rng, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(component_min(a, b));
    benchmark::DoNotOptimize(component_max(a, b));
  }
}
BENCHMARK(BM_VcMeetJoin)->RangeMultiplier(4)->Range(8, 4096);

Interval random_interval(Rng& rng, std::size_t n, ProcessId origin,
                         SeqNum seq) {
  Interval x;
  x.lo = random_clock(rng, n);
  x.hi = x.lo;
  for (std::size_t i = 0; i < n; ++i) {
    x.hi[i] += static_cast<ClockValue>(rng.uniform_int(0, 50));
  }
  x.origin = origin;
  x.seq = seq;
  return x;
}

void BM_IntervalOverlap(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  const Interval a = random_interval(rng, n, 0, 1);
  const Interval b = random_interval(rng, n, 1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(overlap(a, b));
  }
}
BENCHMARK(BM_IntervalOverlap)->RangeMultiplier(4)->Range(8, 4096);

void BM_Aggregate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t k = 8;  // intervals per aggregation (d + 1 heads)
  Rng rng(5);
  std::vector<Interval> xs;
  for (std::size_t i = 0; i < k; ++i) {
    xs.push_back(random_interval(rng, n, static_cast<ProcessId>(i), 1));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        aggregate(std::span<const Interval>(xs), 99, 1));
  }
}
BENCHMARK(BM_Aggregate)->RangeMultiplier(4)->Range(8, 4096);

/// Full queue-engine round trip: d+1 queues fed one mutually-overlapping
/// interval each -> one solution detected and pruned per batch.
void BM_QueueEngineSolve(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 64;
  SeqNum round = 1;
  detect::QueueEngine engine;
  for (std::size_t q = 0; q <= d; ++q) {
    engine.add_queue(static_cast<ProcessId>(q));
  }
  for (auto _ : state) {
    // Construct one round of overlapping intervals: every lo is below every
    // hi (component-wise window [round*2, round*2+1]).
    for (std::size_t q = 0; q <= d; ++q) {
      Interval x;
      x.lo = VectorClock(n);
      x.hi = VectorClock(n);
      for (std::size_t i = 0; i < n; ++i) {
        x.lo[i] = static_cast<ClockValue>(round * 2);
        x.hi[i] = static_cast<ClockValue>(round * 2 + 1);
      }
      x.lo[q] -= 1;  // make the pairs strictly ordered
      x.hi[q] += 1;
      x.origin = static_cast<ProcessId>(q);
      x.seq = round;
      const auto sols = engine.offer(static_cast<ProcessId>(q), x);
      benchmark::DoNotOptimize(sols);
    }
    ++round;
  }
  state.counters["solutions"] =
      static_cast<double>(engine.solutions_found());
}
BENCHMARK(BM_QueueEngineSolve)->DenseRange(2, 10, 2);

}  // namespace
}  // namespace hpd

BENCHMARK_MAIN();
