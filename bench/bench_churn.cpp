// Churn experiment (extension): sustained crash/recovery cycles. Nodes die
// and come back on a schedule while monitoring runs; we measure how
// detection yield and control-traffic overhead degrade with churn rate —
// the regime the paper's WSN motivation actually lives in.
#include <iostream>

#include "bench/bench_util.hpp"
#include "metrics/report.hpp"
#include "net/spanning_tree.hpp"
#include "net/topology.hpp"
#include "proto/messages.hpp"
#include "runner/experiment.hpp"
#include "trace/pulse.hpp"

namespace hpd {
namespace {

bench::JsonReport g_report("bench_churn");

struct ChurnOutcome {
  std::uint64_t global = 0;
  std::uint64_t repairs = 0;       // attach + flip events
  std::uint64_t control_msgs = 0;  // probes/attach/delegate/flip/disown
  std::size_t final_roots = 0;
};

ChurnOutcome run_churn(std::size_t cycles, SimTime spacing,
                       std::uint64_t seed) {
  Rng rng(seed);
  runner::ExperimentConfig cfg;
  Rng topo_rng = rng.split();
  cfg.topology = net::Topology::random_geometric(24, 0.32, topo_rng);
  cfg.tree = net::SpanningTree::bfs_tree(cfg.topology, 0);
  trace::PulseConfig pc;
  pc.rounds = 22;
  pc.period = 90.0;
  cfg.behavior_factory = [pc](ProcessId) {
    return std::make_unique<trace::PulseBehavior>(pc);
  };
  cfg.horizon = 5.0 + 22.0 * 90.0 + 90.0;
  cfg.drain = 300.0;
  cfg.heartbeats = true;
  cfg.seed = rng();
  cfg.keep_occurrence_records = false;

  // Kill/revive cycles: each victim is down for half the spacing.
  SimTime t = 200.0;
  for (std::size_t c = 0; c < cycles; ++c) {
    const auto victim =
        static_cast<ProcessId>(1 + rng.uniform_index(cfg.topology.size() - 1));
    cfg.failures.push_back(runner::FailureEvent{t, victim});
    cfg.recoveries.push_back(runner::FailureEvent{t + spacing / 2.0, victim});
    t += spacing;
  }

  const auto res = runner::run_experiment(cfg);
  ChurnOutcome out;
  out.global = res.global_count;
  out.repairs = res.metrics.msgs_of_type(proto::kAttachAck) +
                res.metrics.msgs_of_type(proto::kFlipGo);
  for (const int type :
       {proto::kProbe, proto::kProbeAck, proto::kAttachReq, proto::kAttachAck,
        proto::kDelegate, proto::kDelegateFail, proto::kFlip, proto::kFlipAck,
        proto::kFlipGo, proto::kDisown}) {
    out.control_msgs += res.metrics.msgs_of_type(type);
  }
  for (const ProcessId p : res.final_parents) {
    out.final_roots += (p == kNoProcess) ? 1 : 0;
  }
  return out;
}

}  // namespace
}  // namespace hpd

int main() {
  using hpd::TextTable;
  std::cout << "== Churn: crash/recovery cycles during 22 pulse rounds "
               "(24-node geometric WSN, 3-seed averages) ==\n";
  TextTable t({"cycles", "spacing", "global detections (of 22)",
               "repair events", "control msgs", "final roots"});
  struct Case {
    std::size_t cycles;
    hpd::SimTime spacing;
  };
  for (const Case c : {Case{0, 0.0}, Case{2, 500.0}, Case{4, 300.0},
                       Case{6, 220.0}, Case{8, 180.0}}) {
    double global = 0;
    double repairs = 0;
    double control = 0;
    double roots = 0;
    const int kSeeds = 3;
    for (int s = 0; s < kSeeds; ++s) {
      const auto out = hpd::run_churn(c.cycles, c.spacing,
                                      91 + static_cast<unsigned>(s));
      global += static_cast<double>(out.global);
      repairs += static_cast<double>(out.repairs);
      control += static_cast<double>(out.control_msgs);
      roots += static_cast<double>(out.final_roots);
    }
    const std::string prefix = "cycles" + std::to_string(c.cycles);
    hpd::g_report.add(prefix + "_global_avg", global / kSeeds);
    hpd::g_report.add(prefix + "_control_msgs_avg", control / kSeeds);
    hpd::g_report.add(prefix + "_final_roots_avg", roots / kSeeds);
    t.add_row({std::to_string(c.cycles),
               c.cycles == 0 ? "-" : TextTable::num(c.spacing, 0),
               TextTable::num(global / kSeeds, 1),
               TextTable::num(repairs / kSeeds, 1),
               TextTable::num(control / kSeeds, 0),
               TextTable::num(roots / kSeeds, 1)});
  }
  t.print(std::cout);
  std::cout << "\nEvery run must end with a single control tree (final\n"
               "roots = 1): crashes heal around the victim and recoveries\n"
               "re-adopt it; detections dip only for rounds whose window\n"
               "overlaps a repair.\n";
  hpd::g_report.write();
  return 0;
}
