// Pruning-rule ablation (extension A4): the paper removes *every* solution
// head satisfying Eq. (10); the ablation removes only the first. Removing
// fewer heads keeps more intervals queued (higher space) and re-derives
// overlapping solution sets more often (more detections and reports) —
// quantifying why the paper's all-heads rule is the right default.
#include <iostream>

#include "bench/bench_util.hpp"
#include "metrics/report.hpp"

namespace hpd {
namespace {

bench::JsonReport g_report("bench_ablation_prune");

void run_ablation(std::size_t d, std::size_t h, double participation) {
  std::cout << "== Eq.(10) pruning ablation, d = " << d << ", h = " << h
            << ", participation = " << participation << ", 25 rounds ==\n";
  TextTable t({"prune mode", "global detections", "all detections",
               "report msgs", "store sum", "store max-node", "cmp total"});
  for (const auto mode : {detect::QueueEngine::PruneMode::kAllEq10,
                          detect::QueueEngine::PruneMode::kSingleEq10}) {
    auto cfg = bench::pulse_config(d, h, 25, participation, 31337,
                                   runner::DetectorKind::kHierarchical);
    cfg.prune_mode = mode;
    const auto res = runner::run_experiment(cfg);
    const std::string prefix =
        "d" + std::to_string(d) + "h" + std::to_string(h) + "_p" +
        std::to_string(static_cast<int>(participation * 100.0 + 0.5)) +
        (mode == detect::QueueEngine::PruneMode::kAllEq10 ? "_all_heads"
                                                          : "_single_head");
    g_report.add(prefix + "_global", static_cast<double>(res.global_count));
    g_report.add(prefix + "_store_sum",
                 static_cast<double>(res.metrics.sum_node_storage_peak()));
    t.add_row({mode == detect::QueueEngine::PruneMode::kAllEq10
                   ? "all heads (paper)"
                   : "single head",
               std::to_string(res.global_count),
               std::to_string(res.metrics.total_detections()),
               std::to_string(res.metrics.msgs_of_type(proto::kReportHier)),
               std::to_string(res.metrics.sum_node_storage_peak()),
               std::to_string(res.metrics.max_node_storage_peak()),
               std::to_string(res.metrics.total_vc_comparisons())});
  }
  t.print(std::cout);
  std::cout << '\n';
}

}  // namespace
}  // namespace hpd

int main() {
  hpd::run_ablation(2, 4, 1.0);
  hpd::run_ablation(2, 4, 0.8);
  hpd::run_ablation(3, 3, 0.9);
  hpd::g_report.write();
  return 0;
}
