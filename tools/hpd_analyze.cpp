// hpd_analyze — interprocedural static analysis over the whole src/ tree.
//
// Where hpd_lint checks structural per-file rules, this tool indexes every
// function definition (src/analysis/source_index), builds the project call
// graph (src/analysis/callgraph), and runs three interprocedural rules
// (src/analysis/checks):
//
//   blocking-reachability   no path from an event-loop entry point to a
//                           blocking call, chain printed in the finding
//   lock-order-cycle        cycles in the mutex acquisition-order graph
//   unchecked-status        discarded status results of socket/Conn APIs
//
// Rule configuration and the justified allowlist live in
// tools/hpd_analyze_rules.txt (see docs/STATIC_ANALYSIS.md).
//
// Exit codes: 0 clean, 1 findings (or, with --strict, unused allowlist
// entries), 2 usage / malformed rules file.

#include <algorithm>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/callgraph.hpp"
#include "analysis/checks.hpp"
#include "analysis/source_index.hpp"

namespace {

namespace fs = std::filesystem;
using hpd::analysis::AllowEntry;
using hpd::analysis::CallGraph;
using hpd::analysis::Finding;
using hpd::analysis::Rules;
using hpd::analysis::SourceIndex;

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--root DIR] [--rules FILE] [--strict] [--dump-callgraph]"
               " [--quiet]\n"
               "Indexes DIR/src (default root: .) and runs the\n"
               "interprocedural rules configured in FILE (default:\n"
               "DIR/tools/hpd_analyze_rules.txt). --dump-callgraph prints\n"
               "the recovered index instead of checking. --strict also\n"
               "fails on unused allowlist entries. Exit 1 on findings,\n"
               "2 on usage or malformed rules.\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  fs::path rules_file;
  bool strict = false;
  bool dump = false;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--rules" && i + 1 < argc) {
      rules_file = argv[++i];
    } else if (arg == "--strict") {
      strict = true;
    } else if (arg == "--dump-callgraph") {
      dump = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (!fs::is_directory(root / "src")) {
    std::cerr << "hpd_analyze: no src/ under " << root << "\n";
    return 2;
  }
  if (rules_file.empty()) {
    rules_file = root / "tools" / "hpd_analyze_rules.txt";
  }

  const SourceIndex index = hpd::analysis::index_tree(root);
  for (const std::string& bad : index.errors) {
    std::cerr << "hpd_analyze: cannot read " << bad << "\n";
  }
  if (!index.errors.empty()) {
    return 2;
  }
  const CallGraph graph = hpd::analysis::build_callgraph(index);

  if (dump) {
    hpd::analysis::dump_callgraph(index, graph, std::cout);
    return 0;
  }

  Rules rules;
  std::string err;
  if (!hpd::analysis::read_rules(rules_file, rules, err)) {
    std::cerr << "hpd_analyze: " << err << "\n";
    return 2;
  }

  const std::vector<Finding> findings =
      hpd::analysis::run_checks(index, graph, rules);
  for (const Finding& fd : findings) {
    std::cout << fd.file << ":" << fd.line << ": " << fd.message << "\n";
  }

  std::size_t unused = 0;
  for (const AllowEntry& a : rules.allows) {
    if (a.used) {
      continue;
    }
    ++unused;
    std::cerr << "hpd_analyze: " << (strict ? "error" : "note")
              << ": unused allowlist entry `" << a.rule << " " << a.pattern
              << "` (" << rules_file.generic_string() << ":" << a.line
              << ")\n";
  }
  if (!quiet) {
    std::cerr << "hpd_analyze: " << index.files.size() << " files, "
              << index.functions.size() << " functions, " << findings.size()
              << " finding(s)\n";
  }
  if (!findings.empty()) {
    return 1;
  }
  return strict && unused != 0 ? 1 : 0;
}
