// hpd_sim — command-line experiment driver.
//
// Runs one simulated deployment of the hierarchical (or centralized)
// detector over a chosen topology, workload, and failure plan, and prints
// the detection and cost report. Everything is deterministic given --seed.
//
// Examples:
//   hpd_sim --topology dary:2:5 --workload pulse:rounds=20
//   hpd_sim --topology geometric:60:0.22 --fault-tolerant --fail 500:3
//           --workload pulse:rounds=15,participation=0.9 --occurrences
//   hpd_sim --topology grid:4x4 --detector central --workload gossip:horizon=400
//   hpd_sim --live --topology grid:4x4 --workload pulse:rounds=7,period=30
//           --fail 40:5 --revive 70:5
//   hpd_sim --help
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/execution_stats.hpp"
#include "ckpt/checkpoint.hpp"
#include "ckpt/event_stream.hpp"
#include "ckpt/snapshot.hpp"
#include "common/assert.hpp"
#include "core/hier_engine.hpp"
#include "detect/centralized.hpp"
#include "detect/occurrence_io.hpp"
#include "detect/offline/replay.hpp"
#include "detect/slicing.hpp"
#include "mc/mc_case.hpp"
#include "mc/oracles.hpp"
#include "mc/repro.hpp"
#include "metrics/report.hpp"
#include "net/render.hpp"
#include "net/spanning_tree.hpp"
#include "net/topology.hpp"
#include "parallel/thread_pool.hpp"
#include "proto/messages.hpp"
#include "rt/live_runner.hpp"
#include "runner/experiment.hpp"
#include "trace/gossip.hpp"
#include "trace/pulse.hpp"
#include "trace/trace_io.hpp"

namespace hpd::tools {
namespace {

[[noreturn]] void usage(int code) {
  std::cout << R"(hpd_sim — hierarchical predicate-detection experiment driver

  --topology SPEC     dary:D:H | grid:RxC | ring:N | complete:N | star:N
                      geometric:N:RADIUS | smallworld:N:K:BETA | scalefree:N:M
                      (default dary:2:4; for dary the network is the tree
                       plus 2*H random cross links when --fault-tolerant)
  --detector KIND     hier | central | possibly | slicing  (default hier;
                      possibly = weak-modality Possibly(Phi) at the sink;
                      slicing = computation-slicing sink)
  --engine KIND       alias for --detector (the mc harness's name for it)
  --workload SPEC     pulse:rounds=R,period=P,participation=Q,jitter=J
                      gossip:horizon=T,gap=G,psend=X,ptoggle=Y,maxintervals=K
                      (default pulse:rounds=10)
  --fail T:NODE       crash NODE at time T (repeatable)
  --revive T:NODE     bring NODE back at time T (repeatable)
  --fault-tolerant    enable heartbeats + tree repair (hier only)
  --live              run over real threads + sockets (rt::LiveTransport)
                      instead of the simulator, then check the merged
                      detection stream against the offline oracles; exits 0
                      iff they hold. Topology must be dary:D:H or grid:RxC,
                      workload pulse or gossip, detector hier.
  --live-transport K  unix | tcp  (default unix; loopback either way)
  --live-backend K    threads | reactor (default threads). threads runs one
                      OS thread per node; reactor multiplexes all nodes onto
                      a small epoll worker pool and scales --live to
                      thousands of nodes.
  --reactor-workers N reactor worker threads (default 0 = auto)
  --live-scale S      real seconds per protocol time unit (default 0.01)
  --chaos SPEC        frame-level fault injection on the live transport
                      (requires --live): drop=P,dup=P,corrupt=P,reset=P,
                      delay=P,delaymax=T — probabilities per DATA frame.
                      The reliable session layer masks the faults, so the
                      oracles are still expected to hold; the report gains
                      retransmit / dup-suppression / surfaced-loss counters.
  --json              machine-readable JSON report on stdout
  --seed N            RNG seed (default 1)
  --repeat N          run N seeds (seed .. seed+N-1) in parallel and print
                      aggregate statistics instead of one run's report
  --root N            spanning-tree root / sink (default 0)
  --occurrences       list every detection
  --csv               machine-readable tables
  --dump-execution F  record the execution and write it to file F
                      (replayable with the offline tools; see trace_io.hpp)
  --dump-occurrences F  write the occurrence log as CSV to file F
  --dump-stream F     record the run and write its sink-ingestion schedule
                      as a durable event stream — the --daemon input format
  --stream-shuffle N  seeded random arrival interleave for --dump-stream
                      (default: round-robin by interval index)
  --daemon            long-lived ingestion mode: consume an event stream
                      file, emit detections incrementally, checkpoint, and
                      survive kill -9 via --restore. Requires --stream.
                      Detector hier runs as a star root over the stream's
                      processes; central and slicing run as sinks
  --stream F          daemon input: an event stream file (--dump-stream)
  --follow            daemon: tail the stream for new events instead of
                      treating EOF as truncation; ends on the stream's END
                      marker or SIGTERM/SIGINT
  --occ-log F         daemon: append every detection to this CSV log
                      (truncated back to the checkpoint's occurrence count
                      on --restore, so kill -9 never duplicates a line)
  --ckpt-dir D        checkpoint directory. Daemon: full detector state.
                      Live: per-node session-epoch table, adopted before
                      start — epoch continuity across process restarts
  --ckpt-every N      daemon: checkpoint every N ingested events
                      (default 0 = only at shutdown)
  --restore           daemon: resume from the newest complete checkpoint
                      in --ckpt-dir (torn/corrupt generations are skipped,
                      never silently loaded)
  --throttle-us N     daemon: pace ingestion at N microseconds per event
  --max-events N      daemon: stop cleanly (final checkpoint) after
                      ingesting N events this run
  --crash-after N     daemon: simulate kill -9 after N events this run:
                      _exit(137), no final checkpoint (crash testing)
  --repro F           replay a model-checker repro file (mc/repro.hpp):
                      re-run the exact case and re-check its oracles;
                      exit 0 iff they all hold (ignores other flags)
  --stats             record the execution and print its profile
  --tree              render the initial spanning tree (and the final
                      forest when there were failures)
  --help
)";
  std::exit(code);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, sep)) {
    out.push_back(item);
  }
  return out;
}

double num_arg(const std::string& s, const char* what) {
  try {
    return std::stod(s);
  } catch (...) {
    std::cerr << "bad number '" << s << "' in " << what << "\n";
    std::exit(2);
  }
}

std::map<std::string, double> kv_args(const std::string& s) {
  std::map<std::string, double> out;
  if (s.empty()) {
    return out;
  }
  for (const std::string& part : split(s, ',')) {
    const auto eq = part.find('=');
    if (eq == std::string::npos) {
      std::cerr << "expected key=value, got '" << part << "'\n";
      std::exit(2);
    }
    out[part.substr(0, eq)] = num_arg(part.substr(eq + 1), part.c_str());
  }
  return out;
}

struct Options {
  std::string topology = "dary:2:4";
  std::string workload = "pulse:rounds=10";
  runner::DetectorKind detector = runner::DetectorKind::kHierarchical;
  bool fault_tolerant = false;
  bool list_occurrences = false;
  bool csv = false;
  bool json = false;
  bool live = false;
  bool live_tcp = false;
  bool live_reactor = false;
  int reactor_workers = 0;
  double live_scale = 0.01;
  std::string chaos;
  std::uint64_t seed = 1;
  std::size_t repeat = 1;
  ProcessId root = 0;
  std::vector<runner::FailureEvent> failures;
  std::vector<runner::FailureEvent> recoveries;
  std::string dump_execution;
  std::string dump_occurrences;
  std::string dump_stream;
  std::optional<std::uint64_t> stream_shuffle;
  std::string repro;
  bool stats = false;
  bool show_tree = false;

  // ---- Daemon / durability -------------------------------------------------
  bool daemon = false;
  std::string stream;
  bool follow = false;
  std::string occ_log;
  std::string ckpt_dir;
  std::uint64_t ckpt_every = 0;
  bool restore = false;
  std::uint64_t throttle_us = 0;
  std::uint64_t max_events = 0;
  std::uint64_t crash_after = 0;
};

net::Topology build_topology(const Options& opt, Rng& rng,
                             std::optional<net::SpanningTree>& tree_out) {
  const auto parts = split(opt.topology, ':');
  const std::string& kind = parts[0];
  auto want = [&](std::size_t k) {
    if (parts.size() != k + 1) {
      std::cerr << "topology '" << kind << "' expects " << k << " params\n";
      std::exit(2);
    }
  };
  if (kind == "dary") {
    want(2);
    const auto d = static_cast<std::size_t>(num_arg(parts[1], "dary d"));
    const auto h = static_cast<std::size_t>(num_arg(parts[2], "dary h"));
    auto tree = net::SpanningTree::balanced_dary(d, h);
    net::Topology topo = net::tree_topology(tree);
    if (opt.fault_tolerant) {
      topo = net::Topology::tree_plus_crosslinks(topo, 2 * h, rng);
    }
    tree_out = std::move(tree);
    return topo;
  }
  if (kind == "grid") {
    want(1);
    const auto rc = split(parts[1], 'x');
    if (rc.size() != 2) {
      std::cerr << "grid expects RxC\n";
      std::exit(2);
    }
    return net::Topology::grid(
        static_cast<std::size_t>(num_arg(rc[0], "rows")),
        static_cast<std::size_t>(num_arg(rc[1], "cols")));
  }
  if (kind == "ring") {
    want(1);
    return net::Topology::ring(
        static_cast<std::size_t>(num_arg(parts[1], "ring n")));
  }
  if (kind == "complete") {
    want(1);
    return net::Topology::complete(
        static_cast<std::size_t>(num_arg(parts[1], "complete n")));
  }
  if (kind == "star") {
    want(1);
    return net::Topology::star(
        static_cast<std::size_t>(num_arg(parts[1], "star n")));
  }
  if (kind == "geometric") {
    want(2);
    return net::Topology::random_geometric(
        static_cast<std::size_t>(num_arg(parts[1], "geometric n")),
        num_arg(parts[2], "geometric radius"), rng);
  }
  if (kind == "smallworld") {
    want(3);
    return net::Topology::small_world(
        static_cast<std::size_t>(num_arg(parts[1], "smallworld n")),
        static_cast<std::size_t>(num_arg(parts[2], "smallworld k")),
        num_arg(parts[3], "smallworld beta"), rng);
  }
  if (kind == "scalefree") {
    want(2);
    return net::Topology::scale_free(
        static_cast<std::size_t>(num_arg(parts[1], "scalefree n")),
        static_cast<std::size_t>(num_arg(parts[2], "scalefree m")), rng);
  }
  std::cerr << "unknown topology kind '" << kind << "'\n";
  std::exit(2);
}

std::function<std::unique_ptr<trace::AppBehavior>(ProcessId)> build_workload(
    const Options& opt, SimTime& horizon_out) {
  const auto colon = opt.workload.find(':');
  const std::string kind = opt.workload.substr(0, colon);
  const auto kv = kv_args(
      colon == std::string::npos ? "" : opt.workload.substr(colon + 1));
  auto get = [&](const char* key, double dflt) {
    auto it = kv.find(key);
    return it == kv.end() ? dflt : it->second;
  };
  if (kind == "pulse") {
    trace::PulseConfig pc;
    pc.rounds = static_cast<SeqNum>(get("rounds", 10));
    pc.period = get("period", 60.0);
    pc.participation = get("participation", 1.0);
    pc.jitter = get("jitter", 1.0);
    pc.start = 5.0;
    horizon_out = pc.start + static_cast<SimTime>(pc.rounds) * pc.period +
                  pc.period;
    return [pc](ProcessId) {
      return std::make_unique<trace::PulseBehavior>(pc);
    };
  }
  if (kind == "gossip") {
    trace::GossipConfig gc;
    gc.horizon = get("horizon", 500.0);
    gc.mean_gap = get("gap", 4.0);
    gc.p_send = get("psend", 0.4);
    gc.p_toggle = get("ptoggle", 0.3);
    gc.max_intervals = static_cast<std::size_t>(get("maxintervals", 20));
    horizon_out = gc.horizon + 20.0;
    return [gc](ProcessId) {
      return std::make_unique<trace::GossipBehavior>(gc);
    };
  }
  std::cerr << "unknown workload kind '" << kind << "'\n";
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(0);
    } else if (arg == "--topology") {
      opt.topology = value();
    } else if (arg == "--workload") {
      opt.workload = value();
    } else if (arg == "--detector" || arg == "--engine") {
      const std::string v = value();
      if (v == "hier") {
        opt.detector = runner::DetectorKind::kHierarchical;
      } else if (v == "central") {
        opt.detector = runner::DetectorKind::kCentralized;
      } else if (v == "possibly") {
        opt.detector = runner::DetectorKind::kPossiblyCentralized;
      } else if (v == "slicing") {
        opt.detector = runner::DetectorKind::kSlicing;
      } else {
        std::cerr << "detector must be hier|central|possibly|slicing\n";
        std::exit(2);
      }
    } else if (arg == "--fail") {
      const auto parts = split(value(), ':');
      if (parts.size() != 2) {
        std::cerr << "--fail expects T:NODE\n";
        std::exit(2);
      }
      opt.failures.push_back(runner::FailureEvent{
          num_arg(parts[0], "fail time"),
          static_cast<ProcessId>(num_arg(parts[1], "fail node"))});
    } else if (arg == "--revive") {
      const auto parts = split(value(), ':');
      if (parts.size() != 2) {
        std::cerr << "--revive expects T:NODE\n";
        std::exit(2);
      }
      opt.recoveries.push_back(runner::FailureEvent{
          num_arg(parts[0], "revive time"),
          static_cast<ProcessId>(num_arg(parts[1], "revive node"))});
    } else if (arg == "--live") {
      opt.live = true;
    } else if (arg == "--live-transport") {
      const std::string v = value();
      if (v == "unix") {
        opt.live_tcp = false;
      } else if (v == "tcp") {
        opt.live_tcp = true;
      } else {
        std::cerr << "--live-transport must be unix|tcp\n";
        std::exit(2);
      }
    } else if (arg == "--live-backend") {
      const std::string v = value();
      if (v == "threads") {
        opt.live_reactor = false;
      } else if (v == "reactor") {
        opt.live_reactor = true;
      } else {
        std::cerr << "--live-backend must be threads|reactor\n";
        std::exit(2);
      }
    } else if (arg == "--reactor-workers") {
      opt.reactor_workers =
          static_cast<int>(num_arg(value(), "reactor-workers"));
      if (opt.reactor_workers < 0) {
        std::cerr << "--reactor-workers needs a value >= 0\n";
        std::exit(2);
      }
    } else if (arg == "--live-scale") {
      opt.live_scale = num_arg(value(), "live-scale");
      if (opt.live_scale <= 0.0) {
        std::cerr << "--live-scale needs a positive value\n";
        std::exit(2);
      }
    } else if (arg == "--chaos") {
      opt.chaos = value();
    } else if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--fault-tolerant") {
      opt.fault_tolerant = true;
    } else if (arg == "--occurrences") {
      opt.list_occurrences = true;
    } else if (arg == "--csv") {
      opt.csv = true;
    } else if (arg == "--stats") {
      opt.stats = true;
    } else if (arg == "--tree") {
      opt.show_tree = true;
    } else if (arg == "--dump-execution") {
      opt.dump_execution = value();
    } else if (arg == "--dump-occurrences") {
      opt.dump_occurrences = value();
    } else if (arg == "--dump-stream") {
      opt.dump_stream = value();
    } else if (arg == "--stream-shuffle") {
      opt.stream_shuffle =
          static_cast<std::uint64_t>(num_arg(value(), "stream-shuffle"));
    } else if (arg == "--daemon") {
      opt.daemon = true;
    } else if (arg == "--stream") {
      opt.stream = value();
    } else if (arg == "--follow") {
      opt.follow = true;
    } else if (arg == "--occ-log") {
      opt.occ_log = value();
    } else if (arg == "--ckpt-dir") {
      opt.ckpt_dir = value();
    } else if (arg == "--ckpt-every") {
      opt.ckpt_every =
          static_cast<std::uint64_t>(num_arg(value(), "ckpt-every"));
    } else if (arg == "--restore") {
      opt.restore = true;
    } else if (arg == "--throttle-us") {
      opt.throttle_us =
          static_cast<std::uint64_t>(num_arg(value(), "throttle-us"));
    } else if (arg == "--max-events") {
      opt.max_events =
          static_cast<std::uint64_t>(num_arg(value(), "max-events"));
    } else if (arg == "--crash-after") {
      opt.crash_after =
          static_cast<std::uint64_t>(num_arg(value(), "crash-after"));
    } else if (arg == "--repro") {
      opt.repro = value();
    } else if (arg == "--seed") {
      opt.seed = static_cast<std::uint64_t>(num_arg(value(), "seed"));
    } else if (arg == "--repeat") {
      opt.repeat = static_cast<std::size_t>(num_arg(value(), "repeat"));
      if (opt.repeat == 0) {
        std::cerr << "--repeat needs a positive count\n";
        std::exit(2);
      }
    } else if (arg == "--root") {
      opt.root = static_cast<ProcessId>(num_arg(value(), "root"));
    } else {
      std::cerr << "unknown argument '" << arg << "' (try --help)\n";
      std::exit(2);
    }
  }
  return opt;
}

const char* detector_name(runner::DetectorKind k) {
  switch (k) {
    case runner::DetectorKind::kHierarchical:
      return "hier";
    case runner::DetectorKind::kCentralized:
      return "central";
    case runner::DetectorKind::kPossiblyCentralized:
      return "possibly";
    case runner::DetectorKind::kSlicing:
      return "slicing";
  }
  return "?";
}

// ---- Signal handling (self-pipe) -------------------------------------------
//
// The long-lived modes (--daemon, --live) must shut down gracefully on
// SIGTERM/SIGINT: drain what is in flight and flush a final checkpoint.
// The handler does the only two async-signal-safe things possible — set a
// flag and write one byte to a pipe — and the main loops either poll the
// flag (live, between sleeps) or block on the pipe end (daemon, while
// waiting for stream data), so a signal wakes them immediately.

int g_signal_pipe[2] = {-1, -1};
std::atomic<bool> g_stop_requested{false};

extern "C" void stop_signal_handler(int /*signo*/) {
  g_stop_requested.store(true, std::memory_order_relaxed);
  if (g_signal_pipe[1] >= 0) {
    const unsigned char byte = 1;
    [[maybe_unused]] const ssize_t rc = ::write(g_signal_pipe[1], &byte, 1);
  }
}

void install_stop_signals() {
  if (g_signal_pipe[0] >= 0) {
    return;  // already installed
  }
  if (::pipe(g_signal_pipe) == 0) {
    for (const int fd : g_signal_pipe) {
      ::fcntl(fd, F_SETFL, O_NONBLOCK);
      ::fcntl(fd, F_SETFD, FD_CLOEXEC);
    }
  } else {
    g_signal_pipe[0] = g_signal_pipe[1] = -1;  // flag-only fallback
  }
  struct sigaction sa = {};
  sa.sa_handler = stop_signal_handler;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
}

bool stop_requested() {
  return g_stop_requested.load(std::memory_order_relaxed);
}

/// Sleep up to `ms` milliseconds; a stop signal's self-pipe byte ends the
/// wait immediately.
void sleep_or_signal(int ms) {
  if (stop_requested()) {
    return;
  }
  if (g_signal_pipe[0] < 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    return;
  }
  struct pollfd pfd = {g_signal_pipe[0], POLLIN, 0};
  ::poll(&pfd, 1, ms);
}

// ---- JSON report ------------------------------------------------------------

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string json_num(double v) {
  if (!std::isfinite(v)) {
    return "null";
  }
  std::ostringstream ss;
  ss << v;
  return ss.str();
}

/// Live-run context threaded into the shared report: transport diagnostics
/// plus the offline-oracle verdict on the merged detection stream.
struct LiveInfo {
  const char* transport = "unix";
  const char* backend = "threads";
  double scale = 0.0;
  const rt::LiveResult* res = nullptr;
  const std::vector<std::string>* violations = nullptr;
  /// A signal cut the run short: the oracles were not evaluated (the
  /// truncated workload cannot satisfy them) and the exit code stays 0.
  bool interrupted = false;
};

/// {"writes": .., ...} — shared between the live report and the daemon's
/// own JSON document.
void checkpoint_json(std::ostream& os, const CheckpointCounters& ck) {
  os << "{\"writes\": " << ck.writes << ", \"bytes_written\": "
     << ck.bytes_written << ", \"restores\": " << ck.restores
     << ", \"restore_generation\": " << ck.restore_generation
     << ", \"torn_writes_skipped\": " << ck.torn_writes_skipped << "}";
}

void report_json(std::ostream& os, const Options& opt,
                 const runner::ExperimentConfig& cfg,
                 const runner::ExperimentResult& result,
                 const LiveInfo* live) {
  os << "{\n";
  os << "  \"mode\": \"" << (live != nullptr ? "live" : "sim") << "\",\n";
  os << "  \"network\": {\"n\": " << cfg.topology.size()
     << ", \"edges\": " << cfg.topology.num_edges()
     << ", \"tree_height\": " << cfg.tree.height()
     << ", \"max_degree\": " << cfg.tree.max_degree() << ", \"detector\": \""
     << detector_name(cfg.detector) << "\", \"seed\": " << cfg.seed << "},\n";
  os << "  \"summary\": {\"global_detections\": " << result.global_count
     << ", \"all_detections\": " << result.metrics.total_detections()
     << ", \"measured_alpha\": " << json_num(result.measured_alpha())
     << ", \"vc_comparisons\": " << result.metrics.total_vc_comparisons()
     << ", \"storage_peak_max\": " << result.metrics.max_node_storage_peak()
     << ", \"storage_peak_sum\": " << result.metrics.sum_node_storage_peak()
     << ", \"dropped_messages\": " << result.dropped_messages
     << ", \"sim_events\": " << result.sim_events << "},\n";
  os << "  \"messages\": {";
  for (const auto& [type, count] : result.metrics.msgs_by_type()) {
    os << "\"" << json_escape(result.metrics.message_type_name(type))
       << "\": " << count << ", ";
  }
  os << "\"total\": " << result.metrics.msgs_total() << "}";
  if (opt.list_occurrences) {
    os << ",\n  \"occurrences\": [";
    bool first = true;
    for (const auto& rec : result.occurrences) {
      os << (first ? "" : ", ") << "{\"t\": " << json_num(rec.time)
         << ", \"node\": " << rec.detector << ", \"index\": " << rec.index
         << ", \"global\": " << (rec.global ? "true" : "false") << "}";
      first = false;
    }
    os << "]";
  }
  if (live != nullptr) {
    const TransportCounters& tc = live->res->transport;
    os << ",\n  \"live\": {\"transport\": \"" << live->transport
       << "\", \"backend\": \"" << live->backend
       << "\", \"scale\": " << json_num(live->scale)
       << ", \"delivered_messages\": " << live->res->delivered_messages
       << ", \"frame_errors\": " << live->res->frame_errors
       << ", \"connections_accepted\": " << live->res->connections_accepted;
    os << ", \"reliability\": {\"sent\": " << tc.reliable_sent
       << ", \"delivered\": " << tc.msgs_delivered
       << ", \"retransmits\": " << tc.retransmits
       << ", \"dups_suppressed\": " << tc.dups_suppressed
       << ", \"surfaced_losses\": " << tc.surfaced_losses
       << ", \"stale_rejected\": " << tc.stale_rejected
       << ", \"conn_resets\": " << tc.conn_resets
       << ", \"acks_sent\": " << tc.acks_sent
       << ", \"chaos_events\": " << tc.chaos_events << "}";
    const ReactorCounters& rc = live->res->reactor;
    if (rc.workers != 0) {
      os << ", \"reactor\": {\"workers\": " << rc.workers
         << ", \"wakeups\": " << rc.wakeups
         << ", \"ready_events\": " << rc.ready_events
         << ", \"timer_fires\": " << rc.timer_fires
         << ", \"timers_scheduled\": " << rc.timers_scheduled
         << ", \"max_outbound_backlog\": " << rc.max_outbound_backlog
         << ", \"max_loop_micros\": " << rc.max_loop_micros << "}";
    }
    auto put_events = [&](const char* key,
                          const std::vector<rt::LifeEvent>& evs) {
      os << ", \"" << key << "\": [";
      bool first = true;
      for (const rt::LifeEvent& ev : evs) {
        os << (first ? "" : ", ") << "{\"t\": " << json_num(ev.time)
           << ", \"node\": " << ev.node << "}";
        first = false;
      }
      os << "]";
    };
    put_events("crashes", live->res->actual_crashes);
    put_events("recoveries", live->res->actual_recoveries);
    const CheckpointCounters& ck = result.metrics.checkpoint();
    if (ck.writes != 0 || ck.restores != 0 || ck.torn_writes_skipped != 0) {
      os << ", \"checkpoint\": ";
      checkpoint_json(os, ck);
    }
    os << ", \"interrupted\": " << (live->interrupted ? "true" : "false");
    os << ", \"oracle\": \""
       << (live->interrupted        ? "INTERRUPTED"
           : live->violations->empty() ? "PASS"
                                       : "FAIL")
       << "\"";
    os << ", \"violations\": [";
    bool first = true;
    for (const std::string& v : *live->violations) {
      os << (first ? "" : ", ") << "\"" << json_escape(v) << "\"";
      first = false;
    }
    os << "]}";
  }
  os << "\n}\n";
}

// ---- Text report ------------------------------------------------------------

void report_text(std::ostream& os, const Options& opt,
                 const runner::ExperimentConfig& cfg,
                 const runner::ExperimentResult& result,
                 const LiveInfo* live) {
  os << "network: n=" << cfg.topology.size()
     << " edges=" << cfg.topology.num_edges()
     << " tree-height=" << cfg.tree.height()
     << " max-degree=" << cfg.tree.max_degree()
     << " detector=" << detector_name(cfg.detector) << " seed=" << cfg.seed
     << "\n\n";

  if (opt.list_occurrences) {
    TextTable t({"t", "node", "#", "scope"});
    for (const auto& rec : result.occurrences) {
      t.add_row({TextTable::num(rec.time, 1), std::to_string(rec.detector),
                 std::to_string(rec.index),
                 rec.global ? "GLOBAL" : "subtree"});
    }
    opt.csv ? t.print_csv(os) : t.print(os);
    os << '\n';
  }

  TextTable summary({"metric", "value"});
  summary.add_row({"global detections", std::to_string(result.global_count)});
  summary.add_row(
      {"all detections", std::to_string(result.metrics.total_detections())});
  summary.add_row({"measured alpha",
                   TextTable::num(result.measured_alpha(), 3)});
  summary.add_row({"vc comparisons",
                   std::to_string(result.metrics.total_vc_comparisons())});
  summary.add_row({"storage peak (worst node)",
                   std::to_string(result.metrics.max_node_storage_peak())});
  summary.add_row({"storage peak (sum)",
                   std::to_string(result.metrics.sum_node_storage_peak())});
  summary.add_row(
      {"dropped messages", std::to_string(result.dropped_messages)});
  summary.add_row({"sim events", std::to_string(result.sim_events)});
  opt.csv ? summary.print_csv(os) : summary.print(os);
  os << '\n';

  TextTable msgs({"message type", "count"});
  for (const auto& [type, count] : result.metrics.msgs_by_type()) {
    msgs.add_row({result.metrics.message_type_name(type),
                  std::to_string(count)});
  }
  msgs.add_row({"total", std::to_string(result.metrics.msgs_total())});
  opt.csv ? msgs.print_csv(os) : msgs.print(os);

  if (!opt.failures.empty()) {
    os << "\nfinal control tree (survivors):\n";
    for (std::size_t i = 0; i < result.final_alive.size(); ++i) {
      if (!result.final_alive[i]) {
        os << "  " << i << ": crashed\n";
      } else if (result.final_parents[i] == kNoProcess) {
        os << "  " << i << ": root\n";
      }
    }
  }

  if (live != nullptr) {
    const TransportCounters& tc = live->res->transport;
    os << "\nlive transport: " << live->transport
       << " backend=" << live->backend
       << " scale=" << live->scale
       << " delivered=" << live->res->delivered_messages
       << " frame-errors=" << live->res->frame_errors
       << " connections=" << live->res->connections_accepted << "\n";
    const ReactorCounters& rc = live->res->reactor;
    if (rc.workers != 0) {
      os << "reactor: workers=" << rc.workers << " wakeups=" << rc.wakeups
         << " ready-events=" << rc.ready_events
         << " timer-fires=" << rc.timer_fires
         << " timers-scheduled=" << rc.timers_scheduled
         << " max-backlog=" << rc.max_outbound_backlog
         << " max-loop-us=" << rc.max_loop_micros << "\n";
    }
    os << "reliability: sent=" << tc.reliable_sent
       << " delivered=" << tc.msgs_delivered
       << " retransmits=" << tc.retransmits
       << " dups-suppressed=" << tc.dups_suppressed
       << " surfaced-losses=" << tc.surfaced_losses << "\n"
       << "             stale-rejected=" << tc.stale_rejected
       << " conn-resets=" << tc.conn_resets
       << " acks=" << tc.acks_sent
       << " chaos-events=" << tc.chaos_events << "\n";
    for (const rt::LifeEvent& ev : live->res->actual_crashes) {
      os << "measured crash: node " << ev.node
         << " at t=" << TextTable::num(ev.time, 1) << "\n";
    }
    for (const rt::LifeEvent& ev : live->res->actual_recoveries) {
      os << "measured revive: node " << ev.node
         << " at t=" << TextTable::num(ev.time, 1) << "\n";
    }
    const CheckpointCounters& ck = result.metrics.checkpoint();
    if (ck.writes != 0 || ck.restores != 0 || ck.torn_writes_skipped != 0) {
      os << "checkpoint: writes=" << ck.writes
         << " bytes=" << ck.bytes_written << " restores=" << ck.restores
         << " restore-generation=" << ck.restore_generation
         << " torn-skipped=" << ck.torn_writes_skipped << "\n";
    }
    for (const std::string& v : *live->violations) {
      os << "  violation: " << v << "\n";
    }
    os << "live oracle: "
       << (live->interrupted        ? "INTERRUPTED"
           : live->violations->empty() ? "PASS"
                                       : "FAIL")
       << "\n";
  }
}

/// Post-run reporting shared by the simulated and live paths: tree render,
/// file dumps, profile, then the JSON or text report. Returns the process
/// exit code (nonzero iff a live run failed its oracles).
int report(const Options& opt, const runner::ExperimentConfig& cfg,
           const runner::ExperimentResult& result, const LiveInfo* live) {
  // In --json mode stdout carries exactly one JSON document; route the
  // human-oriented side outputs to stderr instead of suppressing them.
  std::ostream& side = opt.json ? std::cerr : std::cout;

  if (opt.show_tree && !opt.json) {
    side << "initial spanning tree:\n";
    net::render_tree(side, cfg.tree);
    if (!opt.failures.empty()) {
      side << "final forest (survivors):\n";
      net::render_forest(side, result.final_parents, &result.final_alive);
    }
    side << '\n';
  }

  if (!opt.dump_execution.empty()) {
    std::ofstream f(opt.dump_execution);
    if (!f) {
      std::cerr << "cannot open " << opt.dump_execution << "\n";
      return 1;
    }
    trace::write_execution(f, result.execution);
    side << "execution written to " << opt.dump_execution << "\n";
  }
  if (!opt.dump_occurrences.empty()) {
    std::ofstream f(opt.dump_occurrences);
    if (!f) {
      std::cerr << "cannot open " << opt.dump_occurrences << "\n";
      return 1;
    }
    detect::write_occurrences_csv(f, result.occurrences);
    side << "occurrences written to " << opt.dump_occurrences << "\n";
  }
  if (!opt.dump_stream.empty()) {
    // Serialize the recorded execution as a daemon-ingestible event stream,
    // in the same arrival order the offline replays use.
    try {
      ckpt::EventStreamWriter w(opt.dump_stream,
                                result.execution.procs.size());
      for (const auto& [p, i] :
           detect::offline::arrival_order(result.execution,
                                          opt.stream_shuffle)) {
        w.append(result.execution.procs[p].intervals[i]);
      }
      w.finish();
      side << "event stream (" << w.events_written() << " events) written to "
           << opt.dump_stream << "\n";
    } catch (const ckpt::CkptError& e) {
      std::cerr << "cannot write " << opt.dump_stream << ": " << e.what()
                << "\n";
      return 1;
    }
  }

  if (opt.stats && !opt.json) {
    analysis::print_stats(side, analysis::compute_stats(result.execution));
    side << '\n';
  }

  if (opt.json) {
    report_json(std::cout, opt, cfg, result, live);
  } else {
    report_text(std::cout, opt, cfg, result, live);
  }
  return (live != nullptr && !live->violations->empty()) ? 1 : 0;
}

// ---- Daemon mode -------------------------------------------------------------
//
// The long-lived ingestion loop: read an event stream (possibly tailing a
// growing file), feed each interval to one detector engine, append every
// detection to the occurrence log, and checkpoint the full detector state
// so a kill -9 plus --restore continues the occurrence stream byte-for-byte
// where an uninterrupted run would have been.
//
// Determinism is the core invariant. The occurrence timestamp source is the
// logical stream position (events consumed so far), not the wall clock, so
// a restored run re-emits exactly the records an uninterrupted run emits.

std::optional<ckpt::EngineKind> daemon_engine_kind(runner::DetectorKind k) {
  switch (k) {
    case runner::DetectorKind::kHierarchical:
      return ckpt::EngineKind::kHier;
    case runner::DetectorKind::kCentralized:
      return ckpt::EngineKind::kCentral;
    case runner::DetectorKind::kSlicing:
      return ckpt::EngineKind::kSlicing;
    case runner::DetectorKind::kPossiblyCentralized:
      return std::nullopt;  // weak modality has no checkpoint surface
  }
  return std::nullopt;
}

/// One detector engine behind a uniform ingest/snapshot surface. The
/// stream's process 0 plays the sink/root role: its intervals are local,
/// everyone else's arrive as reports (hier: as child reports of a star
/// root, so all three engines see the identical arrival sequence).
class DaemonDetector {
 public:
  DaemonDetector(ckpt::EngineKind kind, std::size_t processes,
                 detect::OccurrenceCallback on_occurrence,
                 std::function<SimTime()> now)
      : kind_(kind) {
    std::vector<ProcessId> procs;
    procs.reserve(processes);
    for (std::size_t i = 0; i < processes; ++i) {
      procs.push_back(static_cast<ProcessId>(i));
    }
    switch (kind_) {
      case ckpt::EngineKind::kCentral:
        central_ = std::make_unique<detect::CentralSink>(
            0, procs,
            detect::CentralSink::Hooks{std::move(on_occurrence),
                                       std::move(now)});
        break;
      case ckpt::EngineKind::kSlicing:
        slicing_ = std::make_unique<detect::SlicingDetector>(
            0, procs,
            detect::SlicingDetector::Hooks{std::move(on_occurrence),
                                           std::move(now)});
        break;
      case ckpt::EngineKind::kHier: {
        core::HierNodeEngine::Config c;
        c.self = 0;
        c.has_parent = false;  // root: every detection is global
        core::HierNodeEngine::Hooks h;
        h.on_occurrence = std::move(on_occurrence);
        h.now = std::move(now);
        hier_ = std::make_unique<core::HierNodeEngine>(c, std::move(h));
        for (std::size_t j = 1; j < processes; ++j) {
          hier_->add_child(static_cast<ProcessId>(j), 1);
        }
        break;
      }
    }
  }

  void feed(const Interval& x) {
    switch (kind_) {
      case ckpt::EngineKind::kCentral:
        x.origin == central_->self() ? central_->local_interval(x)
                                     : central_->report(x);
        break;
      case ckpt::EngineKind::kSlicing:
        x.origin == slicing_->self() ? slicing_->local_interval(x)
                                     : slicing_->report(x);
        break;
      case ckpt::EngineKind::kHier:
        x.origin == hier_->self() ? hier_->local_interval(x)
                                  : hier_->child_report(x.origin, x);
        break;
    }
  }

  ckpt::DetectorImage image(std::uint64_t consumed) const {
    ckpt::DetectorImage img;
    img.kind = kind_;
    img.consumed_events = consumed;
    switch (kind_) {
      case ckpt::EngineKind::kCentral:
        img.central = central_->snapshot();
        break;
      case ckpt::EngineKind::kSlicing:
        img.slicing = slicing_->snapshot();
        break;
      case ckpt::EngineKind::kHier:
        img.hier = hier_->snapshot();
        break;
    }
    return img;
  }

  void restore(const ckpt::DetectorImage& img) {
    HPD_REQUIRE(img.kind == kind_, "DaemonDetector: engine kind mismatch");
    switch (kind_) {
      case ckpt::EngineKind::kCentral:
        central_->restore(img.central);
        break;
      case ckpt::EngineKind::kSlicing:
        slicing_->restore(img.slicing);
        break;
      case ckpt::EngineKind::kHier:
        hier_->restore(img.hier);
        break;
    }
  }

 private:
  ckpt::EngineKind kind_;
  std::unique_ptr<detect::CentralSink> central_;
  std::unique_ptr<detect::SlicingDetector> slicing_;
  std::unique_ptr<core::HierNodeEngine> hier_;
};

/// Rewind the occurrence log to the checkpoint's view: header plus `keep`
/// rows, published atomically (tmp + rename) so a crash mid-truncation
/// leaves either the old or the new log, never a torn one. Rows the
/// checkpoint counted but the log lacks are reported (the stream will
/// re-emit them, so this is a warning, not corruption).
void truncate_occ_log(const std::string& path, std::uint64_t keep) {
  static constexpr const char* kHeader = "time,node,index,global,weight";
  std::vector<std::string> lines;
  std::uint64_t rows = 0;
  {
    std::ifstream in(path);
    std::string line;
    bool have_header = false;
    while ((rows < keep || !have_header) && std::getline(in, line)) {
      if (!have_header) {
        have_header = true;
        lines.push_back(line);
        continue;
      }
      lines.push_back(line);
      ++rows;
    }
  }
  if (lines.empty()) {
    lines.emplace_back(kHeader);
  }
  if (rows < keep) {
    std::cerr << "note: occurrence log " << path << " has " << rows
              << " rows, checkpoint expected " << keep
              << " — restore will re-emit the difference\n";
  }
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    for (const std::string& l : lines) {
      out << l << '\n';
    }
    out.flush();
    if (!out) {
      std::cerr << "cannot rewrite " << path << "\n";
      std::exit(1);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::cerr << "cannot publish truncated " << path << "\n";
    std::exit(1);
  }
}

int run_daemon(const Options& opt) {
  if (opt.stream.empty()) {
    std::cerr << "--daemon requires --stream FILE (see --dump-stream)\n";
    return 2;
  }
  if (opt.live || opt.repeat > 1) {
    std::cerr << "--daemon conflicts with --live and --repeat\n";
    return 2;
  }
  const std::optional<ckpt::EngineKind> kind =
      daemon_engine_kind(opt.detector);
  if (!kind.has_value()) {
    std::cerr << "--daemon supports detectors hier, central, slicing\n";
    return 2;
  }
  if ((opt.restore || opt.ckpt_every != 0) && opt.ckpt_dir.empty()) {
    std::cerr << "--restore / --ckpt-every require --ckpt-dir\n";
    return 2;
  }

  install_stop_signals();

  std::unique_ptr<ckpt::CheckpointStore> store;
  if (!opt.ckpt_dir.empty()) {
    store = std::make_unique<ckpt::CheckpointStore>(opt.ckpt_dir, "daemon");
  }

  std::unique_ptr<ckpt::EventStreamReader> reader;
  try {
    reader = std::make_unique<ckpt::EventStreamReader>(opt.stream);
  } catch (const ckpt::CkptError& e) {
    std::cerr << "cannot open stream: " << e.what() << "\n";
    return 1;
  }

  // Wait for the stream header (race-free under --follow: the producer may
  // not have written its first bytes yet).
  std::optional<Interval> pending;
  while (!reader->have_header()) {
    Interval ev;
    ckpt::EventStreamReader::Status st;
    try {
      st = reader->next(ev);
    } catch (const ckpt::CkptError& e) {
      std::cerr << "bad stream: " << e.what() << "\n";
      return 1;
    }
    if (st == ckpt::EventStreamReader::Status::kEvent) {
      pending = ev;
      break;
    }
    if (st == ckpt::EventStreamReader::Status::kEnd) {
      break;
    }
    if (stop_requested()) {
      std::cerr << "interrupted before the stream header arrived\n";
      return 0;
    }
    if (!opt.follow) {
      std::cerr << "stream has no header (truncated? use --follow to "
                   "tail a growing file)\n";
      return 1;
    }
    sleep_or_signal(10);
  }
  if (!reader->have_header()) {
    std::cerr << "stream ended before its header\n";
    return 1;
  }
  const std::size_t processes = reader->num_processes();

  // Logical stream position and output count — monotone across restarts:
  // a restore seeds them from the checkpoint and skips the consumed prefix.
  std::uint64_t consumed = 0;
  std::uint64_t emitted = 0;

  ckpt::DetectorImage restored_image;
  bool have_restore = false;
  if (opt.restore) {
    if (std::optional<ckpt::CheckpointData> data = store->load_latest()) {
      if (data->meta.engine_kind != static_cast<std::uint8_t>(*kind)) {
        std::cerr << "checkpoint was written by a different engine ("
                  << static_cast<int>(data->meta.engine_kind)
                  << "); refusing to restore into --detector "
                  << detector_name(opt.detector) << "\n";
        return 2;
      }
      try {
        restored_image = ckpt::decode_detector(data->detector);
      } catch (const ckpt::CkptError& e) {
        std::cerr << "corrupt detector image: " << e.what() << "\n";
        return 1;
      }
      consumed = data->meta.consumed_events;
      emitted = data->meta.occurrences_emitted;
      have_restore = true;
    } else {
      std::cerr << "note: no restorable checkpoint in " << opt.ckpt_dir
                << "; starting fresh\n";
    }
  }

  std::ofstream occ;
  if (!opt.occ_log.empty()) {
    if (have_restore) {
      // Drop rows the pre-crash run emitted past the checkpoint: the
      // re-fed stream suffix regenerates them, and the log must not
      // duplicate a line.
      truncate_occ_log(opt.occ_log, emitted);
      occ.open(opt.occ_log, std::ios::app);
    } else {
      occ.open(opt.occ_log, std::ios::trunc);
      if (occ) {
        occ << "time,node,index,global,weight\n";
        occ.flush();
      }
    }
    if (!occ) {
      std::cerr << "cannot open " << opt.occ_log << "\n";
      return 1;
    }
  }

  // Deterministic clock: detection time == index of the triggering event.
  auto now = [&consumed] { return static_cast<SimTime>(consumed); };
  auto on_occurrence = [&](const detect::OccurrenceRecord& rec) {
    ++emitted;
    if (occ.is_open()) {
      // write_occurrences_csv's row format, one row per detection, flushed
      // immediately: a kill -9 never loses an emitted line.
      occ << rec.time << ',' << rec.detector << ',' << rec.index << ','
          << (rec.global ? 1 : 0) << ',' << rec.aggregate.weight << "\n";
      occ.flush();
    }
  };

  DaemonDetector det(*kind, processes, on_occurrence, now);
  if (have_restore) {
    det.restore(restored_image);
  }

  auto write_checkpoint = [&] {
    if (store == nullptr) {
      return;
    }
    ckpt::CheckpointData data;
    data.meta.engine_kind = static_cast<std::uint8_t>(*kind);
    data.meta.consumed_events = consumed;
    data.meta.occurrences_emitted = emitted;
    data.detector = ckpt::encode_detector(det.image(consumed));
    store->write(std::move(data));
  };

  const std::uint64_t already_consumed = consumed;
  std::uint64_t this_run = 0;
  bool interrupted = false;
  bool truncated = false;
  bool clean_end = false;

  auto next_event = [&](Interval& ev) {
    if (pending.has_value()) {
      ev = *pending;
      pending.reset();
      return ckpt::EventStreamReader::Status::kEvent;
    }
    return reader->next(ev);
  };

  try {
    while (true) {
      if (stop_requested()) {
        interrupted = true;
        break;
      }
      Interval ev;
      const ckpt::EventStreamReader::Status st = next_event(ev);
      if (st == ckpt::EventStreamReader::Status::kEnd) {
        clean_end = true;
        break;
      }
      if (st == ckpt::EventStreamReader::Status::kWait) {
        if (!opt.follow) {
          truncated = true;
          break;
        }
        sleep_or_signal(10);
        continue;
      }
      if (reader->events_read() <= already_consumed) {
        continue;  // prefix the restored checkpoint already ingested
      }
      ++consumed;
      ++this_run;
      det.feed(ev);
      if (opt.crash_after != 0 && this_run >= opt.crash_after) {
        // Deterministic self-kill for crash testing: no checkpoint, no
        // flush, no unwinding — indistinguishable from kill -9 here.
        std::_Exit(137);
      }
      if (opt.ckpt_every != 0 && this_run % opt.ckpt_every == 0) {
        write_checkpoint();
      }
      if (opt.max_events != 0 && this_run >= opt.max_events) {
        break;
      }
      if (opt.throttle_us != 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(opt.throttle_us));
      }
    }
  } catch (const ckpt::CkptError& e) {
    std::cerr << "stream error after " << consumed << " events: " << e.what()
              << "\n";
    write_checkpoint();  // progress up to the last good event survives
    return 1;
  }

  // Clean shutdown (END marker, --max-events, truncation, or a signal):
  // always leave a final checkpoint behind.
  write_checkpoint();

  if (truncated) {
    std::cerr << "stream ended without an END marker after " << consumed
              << " events (use --follow to tail a growing file); "
                 "progress checkpointed\n";
  }

  const CheckpointCounters ck =
      store != nullptr ? store->counters() : CheckpointCounters{};
  if (opt.json) {
    std::cout << "{\n  \"mode\": \"daemon\",\n  \"detector\": \""
              << detector_name(opt.detector) << "\",\n  \"processes\": "
              << processes << ",\n  \"consumed_events\": " << consumed
              << ",\n  \"events_this_run\": " << this_run
              << ",\n  \"occurrences_emitted\": " << emitted
              << ",\n  \"interrupted\": " << (interrupted ? "true" : "false")
              << ",\n  \"clean_end\": " << (clean_end ? "true" : "false")
              << ",\n  \"checkpoint\": ";
    checkpoint_json(std::cout, ck);
    std::cout << "\n}\n";
  } else {
    std::cout << "daemon: detector=" << detector_name(opt.detector)
              << " processes=" << processes << " consumed=" << consumed
              << " this-run=" << this_run << " occurrences=" << emitted
              << (interrupted ? " (interrupted)" : "")
              << (clean_end ? " (end of stream)" : "") << "\n";
    if (store != nullptr) {
      std::cout << "checkpoint: writes=" << ck.writes
                << " bytes=" << ck.bytes_written
                << " restores=" << ck.restores
                << " restore-generation=" << ck.restore_generation
                << " torn-skipped=" << ck.torn_writes_skipped << "\n";
    }
  }
  return truncated ? 1 : 0;
}

// ---- Live mode --------------------------------------------------------------

/// Translate the CLI options into a model-checker case so the live run can
/// be judged by exactly the oracles the checker uses. Only the case-schema
/// topologies and workloads are expressible.
mc::McCase build_live_case(const Options& opt) {
  mc::McCase c;
  const auto topo = split(opt.topology, ':');
  if (topo.empty() || (topo[0] != "dary" && topo[0] != "grid")) {
    std::cerr << "--live supports only dary:D:H or grid:RxC topologies\n";
    std::exit(2);
  }
  c.topology = opt.topology;
  const auto colon = opt.workload.find(':');
  const std::string kind = opt.workload.substr(0, colon);
  const auto kv = kv_args(
      colon == std::string::npos ? "" : opt.workload.substr(colon + 1));
  auto get = [&](const char* key, double dflt) {
    auto it = kv.find(key);
    return it == kv.end() ? dflt : it->second;
  };
  if (kind == "pulse") {
    c.workload = mc::WorkloadKind::kPulse;
    c.pulse_rounds = static_cast<SeqNum>(get("rounds", 10));
    c.pulse_period = get("period", 60.0);
  } else if (kind == "gossip") {
    c.workload = mc::WorkloadKind::kGossip;
    c.horizon = get("horizon", 160.0);
    c.mean_gap = get("gap", 4.0);
    c.p_send = get("psend", 0.45);
    c.p_toggle = get("ptoggle", 0.35);
    c.max_intervals = static_cast<std::size_t>(get("maxintervals", 8));
  } else {
    std::cerr << "--live supports only pulse and gossip workloads\n";
    std::exit(2);
  }
  c.crashes = opt.failures;
  c.recoveries = opt.recoveries;
  c.seed = opt.seed;
  if (!opt.chaos.empty()) {
    for (const auto& [key, v] : kv_args(opt.chaos)) {
      if (key == "drop") {
        c.chaos_drop_p = v;
      } else if (key == "dup") {
        c.chaos_dup_p = v;
      } else if (key == "corrupt") {
        c.chaos_corrupt_p = v;
      } else if (key == "reset") {
        c.chaos_reset_p = v;
      } else if (key == "delay") {
        c.chaos_delay_p = v;
      } else if (key == "delaymax") {
        c.chaos_delay_max = v;
      } else {
        std::cerr << "--chaos: unknown key '" << key
                  << "' (drop|dup|corrupt|reset|delay|delaymax)\n";
        std::exit(2);
      }
    }
  }
  return c;
}

int run_live(const Options& opt) {
  if (opt.detector != runner::DetectorKind::kHierarchical) {
    std::cerr << "--live supports only the hierarchical detector\n";
    return 2;
  }
  if (opt.repeat > 1) {
    std::cerr << "--live does not support --repeat\n";
    return 2;
  }
  mc::McCase c = build_live_case(opt);
  runner::ExperimentConfig cfg = mc::build_case(c);
  if (!c.crashes.empty() || !c.recoveries.empty()) {
    // Relax heartbeat timing relative to the simulator defaults: real
    // scheduler jitter must stay well inside the suspicion timeout.
    cfg.hb_config.period = 5.0;
    cfg.hb_config.timeout_multiplier = 4.0;
  }

  rt::LiveConfig lc;
  lc.backend = opt.live_reactor ? rt::LiveBackendKind::kReactor
                                : rt::LiveBackendKind::kThreads;
  lc.reactor_workers = opt.reactor_workers;
  lc.socket_kind = opt.live_tcp ? rt::SockAddr::Kind::kTcp
                                : rt::SockAddr::Kind::kUnix;
  lc.time_scale = opt.live_scale;
  if (c.has_live_chaos()) {
    lc.chaos.drop_p = c.chaos_drop_p;
    lc.chaos.dup_p = c.chaos_dup_p;
    lc.chaos.corrupt_p = c.chaos_corrupt_p;
    lc.chaos.reset_p = c.chaos_reset_p;
    lc.chaos.delay_p = c.chaos_delay_p;
    lc.chaos.delay_max = c.chaos_delay_max;
    // Stop injecting when the workload horizon ends so the drain phase can
    // flush every retransmission; a clean drain is what lets the strict
    // differential oracle hold under chaos.
    lc.chaos.until = cfg.horizon;
    lc.chaos.seed = opt.seed ^ 0xc4a05u;
  }
  lc.ckpt_dir = opt.ckpt_dir;
  install_stop_signals();
  const rt::LiveResult live =
      rt::run_live_experiment(cfg, lc, &g_stop_requested);

  // The oracles must judge the run that actually happened: substitute the
  // measured fault instants for the planned ones. An interrupted run is
  // exempt — its truncated workload cannot satisfy the oracles, and that
  // is not a detector failure.
  std::vector<std::string> violations;
  if (!live.interrupted) {
    c.crashes.clear();
    c.recoveries.clear();
    for (const rt::LifeEvent& ev : live.actual_crashes) {
      c.crashes.push_back({ev.time, ev.node});
    }
    for (const rt::LifeEvent& ev : live.actual_recoveries) {
      c.recoveries.push_back({ev.time, ev.node});
    }
    violations = mc::check_oracles(c, cfg, live.result);
  }

  LiveInfo info;
  info.transport = opt.live_tcp ? "tcp" : "unix";
  info.backend = opt.live_reactor ? "reactor" : "threads";
  info.scale = opt.live_scale;
  info.res = &live;
  info.violations = &violations;
  info.interrupted = live.interrupted;
  return report(opt, cfg, live.result, &info);
}

int run(const Options& opt) {
  if (!opt.repro.empty()) {
    try {
      return mc::replay_repro(opt.repro, std::cout);
    } catch (const AssertionError& e) {
      std::cerr << "bad repro file: " << e.what() << "\n";
      return 2;
    }
  }
  if (opt.daemon) {
    return run_daemon(opt);
  }
  if (opt.live) {
    return run_live(opt);
  }
  if (!opt.chaos.empty()) {
    std::cerr << "--chaos requires --live (the simulator has no frame "
                 "boundary; use the mc fault plan instead)\n";
    return 2;
  }
  Rng topo_rng(opt.seed ^ 0x70701090);
  runner::ExperimentConfig cfg;
  std::optional<net::SpanningTree> fixed_tree;
  cfg.topology = build_topology(opt, topo_rng, fixed_tree);
  cfg.tree = fixed_tree.has_value()
                 ? *fixed_tree
                 : net::SpanningTree::bfs_tree(cfg.topology, opt.root);
  SimTime horizon = 600.0;
  cfg.behavior_factory = build_workload(opt, horizon);
  cfg.horizon = horizon;
  cfg.drain = 150.0;
  cfg.detector = opt.detector;
  cfg.heartbeats =
      opt.fault_tolerant &&
      opt.detector == runner::DetectorKind::kHierarchical;
  cfg.failures = opt.failures;
  cfg.recoveries = opt.recoveries;
  cfg.seed = opt.seed;
  cfg.occurrence_solutions = false;
  cfg.record_execution = !opt.dump_execution.empty() ||
                         !opt.dump_stream.empty() || opt.stats;

  if (!opt.failures.empty() && !cfg.heartbeats &&
      opt.detector == runner::DetectorKind::kHierarchical) {
    std::cerr << "note: failures without --fault-tolerant will stall "
                 "affected subtrees\n";
  }

  if (opt.repeat > 1) {
    // Multi-seed sweep: fan the runs across cores (each run is fully
    // independent; results are joined deterministically by seed order).
    cfg.keep_occurrence_records = false;
    cfg.record_execution = false;
    parallel::ThreadPool pool;
    struct SweepRow {
      std::uint64_t global = 0;
      std::uint64_t msgs = 0;
      std::uint64_t cmp = 0;
      double alpha = 0.0;
    };
    const auto rows = parallel::parallel_map<SweepRow>(
        pool, opt.repeat, [&](std::size_t i) {
          runner::ExperimentConfig run_cfg = cfg;
          run_cfg.seed = opt.seed + i;
          const auto r = runner::run_experiment(run_cfg);
          return SweepRow{r.global_count, r.metrics.msgs_total(),
                          r.metrics.total_vc_comparisons(),
                          r.measured_alpha()};
        });
    TextTable t({"seed", "global detections", "msgs total", "vc comparisons",
                 "alpha"});
    double g_sum = 0.0;
    double m_sum = 0.0;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      t.add_row({std::to_string(opt.seed + i),
                 std::to_string(rows[i].global),
                 std::to_string(rows[i].msgs), std::to_string(rows[i].cmp),
                 TextTable::num(rows[i].alpha, 3)});
      g_sum += static_cast<double>(rows[i].global);
      m_sum += static_cast<double>(rows[i].msgs);
    }
    if (opt.json) {
      std::cout << "{\n  \"mode\": \"sweep\",\n  \"rows\": [";
      for (std::size_t i = 0; i < rows.size(); ++i) {
        std::cout << (i == 0 ? "" : ", ")
                  << "{\"seed\": " << (opt.seed + i)
                  << ", \"global_detections\": " << rows[i].global
                  << ", \"msgs_total\": " << rows[i].msgs
                  << ", \"vc_comparisons\": " << rows[i].cmp
                  << ", \"alpha\": " << json_num(rows[i].alpha) << "}";
      }
      std::cout << "],\n  \"mean\": {\"global_detections\": "
                << json_num(g_sum / static_cast<double>(opt.repeat))
                << ", \"msgs_total\": "
                << json_num(m_sum / static_cast<double>(opt.repeat))
                << "}\n}\n";
      return 0;
    }
    opt.csv ? t.print_csv(std::cout) : t.print(std::cout);
    std::cout << "\nmean over " << opt.repeat
              << " seeds: global detections "
              << TextTable::num(g_sum / static_cast<double>(opt.repeat), 2)
              << ", messages "
              << TextTable::num(m_sum / static_cast<double>(opt.repeat), 1)
              << "\n";
    return 0;
  }

  const auto result = runner::run_experiment(cfg);
  return report(opt, cfg, result, nullptr);
}

}  // namespace
}  // namespace hpd::tools

int main(int argc, char** argv) {
  return hpd::tools::run(hpd::tools::parse(argc, argv));
}
