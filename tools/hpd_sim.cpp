// hpd_sim — command-line experiment driver.
//
// Runs one simulated deployment of the hierarchical (or centralized)
// detector over a chosen topology, workload, and failure plan, and prints
// the detection and cost report. Everything is deterministic given --seed.
//
// Examples:
//   hpd_sim --topology dary:2:5 --workload pulse:rounds=20
//   hpd_sim --topology geometric:60:0.22 --fault-tolerant --fail 500:3
//           --workload pulse:rounds=15,participation=0.9 --occurrences
//   hpd_sim --topology grid:4x4 --detector central --workload gossip:horizon=400
//   hpd_sim --help
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/execution_stats.hpp"
#include "mc/repro.hpp"
#include "metrics/report.hpp"
#include "net/render.hpp"
#include "net/spanning_tree.hpp"
#include "net/topology.hpp"
#include "parallel/thread_pool.hpp"
#include "proto/messages.hpp"
#include "runner/experiment.hpp"
#include "trace/gossip.hpp"
#include "trace/pulse.hpp"
#include "trace/trace_io.hpp"

namespace hpd::tools {
namespace {

[[noreturn]] void usage(int code) {
  std::cout << R"(hpd_sim — hierarchical predicate-detection experiment driver

  --topology SPEC     dary:D:H | grid:RxC | ring:N | complete:N | star:N
                      geometric:N:RADIUS | smallworld:N:K:BETA | scalefree:N:M
                      (default dary:2:4; for dary the network is the tree
                       plus 2*H random cross links when --fault-tolerant)
  --detector KIND     hier | central | possibly  (default hier;
                      possibly = weak-modality Possibly(Phi) at the sink)
  --workload SPEC     pulse:rounds=R,period=P,participation=Q,jitter=J
                      gossip:horizon=T,gap=G,psend=X,ptoggle=Y,maxintervals=K
                      (default pulse:rounds=10)
  --fail T:NODE       crash NODE at time T (repeatable)
  --fault-tolerant    enable heartbeats + tree repair (hier only)
  --seed N            RNG seed (default 1)
  --repeat N          run N seeds (seed .. seed+N-1) in parallel and print
                      aggregate statistics instead of one run's report
  --root N            spanning-tree root / sink (default 0)
  --occurrences       list every detection
  --csv               machine-readable tables
  --dump-execution F  record the execution and write it to file F
                      (replayable with the offline tools; see trace_io.hpp)
  --dump-occurrences F  write the occurrence log as CSV to file F
  --repro F           replay a model-checker repro file (mc/repro.hpp):
                      re-run the exact case and re-check its oracles;
                      exit 0 iff they all hold (ignores other flags)
  --stats             record the execution and print its profile
  --tree              render the initial spanning tree (and the final
                      forest when there were failures)
  --help
)";
  std::exit(code);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, sep)) {
    out.push_back(item);
  }
  return out;
}

double num_arg(const std::string& s, const char* what) {
  try {
    return std::stod(s);
  } catch (...) {
    std::cerr << "bad number '" << s << "' in " << what << "\n";
    std::exit(2);
  }
}

std::map<std::string, double> kv_args(const std::string& s) {
  std::map<std::string, double> out;
  if (s.empty()) {
    return out;
  }
  for (const std::string& part : split(s, ',')) {
    const auto eq = part.find('=');
    if (eq == std::string::npos) {
      std::cerr << "expected key=value, got '" << part << "'\n";
      std::exit(2);
    }
    out[part.substr(0, eq)] = num_arg(part.substr(eq + 1), part.c_str());
  }
  return out;
}

struct Options {
  std::string topology = "dary:2:4";
  std::string workload = "pulse:rounds=10";
  runner::DetectorKind detector = runner::DetectorKind::kHierarchical;
  bool fault_tolerant = false;
  bool list_occurrences = false;
  bool csv = false;
  std::uint64_t seed = 1;
  std::size_t repeat = 1;
  ProcessId root = 0;
  std::vector<runner::FailureEvent> failures;
  std::string dump_execution;
  std::string dump_occurrences;
  std::string repro;
  bool stats = false;
  bool show_tree = false;
};

net::Topology build_topology(const Options& opt, Rng& rng,
                             std::optional<net::SpanningTree>& tree_out) {
  const auto parts = split(opt.topology, ':');
  const std::string& kind = parts[0];
  auto want = [&](std::size_t k) {
    if (parts.size() != k + 1) {
      std::cerr << "topology '" << kind << "' expects " << k << " params\n";
      std::exit(2);
    }
  };
  if (kind == "dary") {
    want(2);
    const auto d = static_cast<std::size_t>(num_arg(parts[1], "dary d"));
    const auto h = static_cast<std::size_t>(num_arg(parts[2], "dary h"));
    auto tree = net::SpanningTree::balanced_dary(d, h);
    net::Topology topo = net::tree_topology(tree);
    if (opt.fault_tolerant) {
      topo = net::Topology::tree_plus_crosslinks(topo, 2 * h, rng);
    }
    tree_out = std::move(tree);
    return topo;
  }
  if (kind == "grid") {
    want(1);
    const auto rc = split(parts[1], 'x');
    if (rc.size() != 2) {
      std::cerr << "grid expects RxC\n";
      std::exit(2);
    }
    return net::Topology::grid(
        static_cast<std::size_t>(num_arg(rc[0], "rows")),
        static_cast<std::size_t>(num_arg(rc[1], "cols")));
  }
  if (kind == "ring") {
    want(1);
    return net::Topology::ring(
        static_cast<std::size_t>(num_arg(parts[1], "ring n")));
  }
  if (kind == "complete") {
    want(1);
    return net::Topology::complete(
        static_cast<std::size_t>(num_arg(parts[1], "complete n")));
  }
  if (kind == "star") {
    want(1);
    return net::Topology::star(
        static_cast<std::size_t>(num_arg(parts[1], "star n")));
  }
  if (kind == "geometric") {
    want(2);
    return net::Topology::random_geometric(
        static_cast<std::size_t>(num_arg(parts[1], "geometric n")),
        num_arg(parts[2], "geometric radius"), rng);
  }
  if (kind == "smallworld") {
    want(3);
    return net::Topology::small_world(
        static_cast<std::size_t>(num_arg(parts[1], "smallworld n")),
        static_cast<std::size_t>(num_arg(parts[2], "smallworld k")),
        num_arg(parts[3], "smallworld beta"), rng);
  }
  if (kind == "scalefree") {
    want(2);
    return net::Topology::scale_free(
        static_cast<std::size_t>(num_arg(parts[1], "scalefree n")),
        static_cast<std::size_t>(num_arg(parts[2], "scalefree m")), rng);
  }
  std::cerr << "unknown topology kind '" << kind << "'\n";
  std::exit(2);
}

std::function<std::unique_ptr<trace::AppBehavior>(ProcessId)> build_workload(
    const Options& opt, SimTime& horizon_out) {
  const auto colon = opt.workload.find(':');
  const std::string kind = opt.workload.substr(0, colon);
  const auto kv = kv_args(
      colon == std::string::npos ? "" : opt.workload.substr(colon + 1));
  auto get = [&](const char* key, double dflt) {
    auto it = kv.find(key);
    return it == kv.end() ? dflt : it->second;
  };
  if (kind == "pulse") {
    trace::PulseConfig pc;
    pc.rounds = static_cast<SeqNum>(get("rounds", 10));
    pc.period = get("period", 60.0);
    pc.participation = get("participation", 1.0);
    pc.jitter = get("jitter", 1.0);
    pc.start = 5.0;
    horizon_out = pc.start + static_cast<SimTime>(pc.rounds) * pc.period +
                  pc.period;
    return [pc](ProcessId) {
      return std::make_unique<trace::PulseBehavior>(pc);
    };
  }
  if (kind == "gossip") {
    trace::GossipConfig gc;
    gc.horizon = get("horizon", 500.0);
    gc.mean_gap = get("gap", 4.0);
    gc.p_send = get("psend", 0.4);
    gc.p_toggle = get("ptoggle", 0.3);
    gc.max_intervals = static_cast<std::size_t>(get("maxintervals", 20));
    horizon_out = gc.horizon + 20.0;
    return [gc](ProcessId) {
      return std::make_unique<trace::GossipBehavior>(gc);
    };
  }
  std::cerr << "unknown workload kind '" << kind << "'\n";
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(0);
    } else if (arg == "--topology") {
      opt.topology = value();
    } else if (arg == "--workload") {
      opt.workload = value();
    } else if (arg == "--detector") {
      const std::string v = value();
      if (v == "hier") {
        opt.detector = runner::DetectorKind::kHierarchical;
      } else if (v == "central") {
        opt.detector = runner::DetectorKind::kCentralized;
      } else if (v == "possibly") {
        opt.detector = runner::DetectorKind::kPossiblyCentralized;
      } else {
        std::cerr << "detector must be hier|central|possibly\n";
        std::exit(2);
      }
    } else if (arg == "--fail") {
      const auto parts = split(value(), ':');
      if (parts.size() != 2) {
        std::cerr << "--fail expects T:NODE\n";
        std::exit(2);
      }
      opt.failures.push_back(runner::FailureEvent{
          num_arg(parts[0], "fail time"),
          static_cast<ProcessId>(num_arg(parts[1], "fail node"))});
    } else if (arg == "--fault-tolerant") {
      opt.fault_tolerant = true;
    } else if (arg == "--occurrences") {
      opt.list_occurrences = true;
    } else if (arg == "--csv") {
      opt.csv = true;
    } else if (arg == "--stats") {
      opt.stats = true;
    } else if (arg == "--tree") {
      opt.show_tree = true;
    } else if (arg == "--dump-execution") {
      opt.dump_execution = value();
    } else if (arg == "--dump-occurrences") {
      opt.dump_occurrences = value();
    } else if (arg == "--repro") {
      opt.repro = value();
    } else if (arg == "--seed") {
      opt.seed = static_cast<std::uint64_t>(num_arg(value(), "seed"));
    } else if (arg == "--repeat") {
      opt.repeat = static_cast<std::size_t>(num_arg(value(), "repeat"));
      if (opt.repeat == 0) {
        std::cerr << "--repeat needs a positive count\n";
        std::exit(2);
      }
    } else if (arg == "--root") {
      opt.root = static_cast<ProcessId>(num_arg(value(), "root"));
    } else {
      std::cerr << "unknown argument '" << arg << "' (try --help)\n";
      std::exit(2);
    }
  }
  return opt;
}

int run(const Options& opt) {
  if (!opt.repro.empty()) {
    try {
      return mc::replay_repro(opt.repro, std::cout);
    } catch (const AssertionError& e) {
      std::cerr << "bad repro file: " << e.what() << "\n";
      return 2;
    }
  }
  Rng topo_rng(opt.seed ^ 0x70701090);
  runner::ExperimentConfig cfg;
  std::optional<net::SpanningTree> fixed_tree;
  cfg.topology = build_topology(opt, topo_rng, fixed_tree);
  cfg.tree = fixed_tree.has_value()
                 ? *fixed_tree
                 : net::SpanningTree::bfs_tree(cfg.topology, opt.root);
  SimTime horizon = 600.0;
  cfg.behavior_factory = build_workload(opt, horizon);
  cfg.horizon = horizon;
  cfg.drain = 150.0;
  cfg.detector = opt.detector;
  cfg.heartbeats =
      opt.fault_tolerant &&
      opt.detector == runner::DetectorKind::kHierarchical;
  cfg.failures = opt.failures;
  cfg.seed = opt.seed;
  cfg.occurrence_solutions = false;
  cfg.record_execution = !opt.dump_execution.empty() || opt.stats;

  if (!opt.failures.empty() && !cfg.heartbeats &&
      opt.detector == runner::DetectorKind::kHierarchical) {
    std::cerr << "note: failures without --fault-tolerant will stall "
                 "affected subtrees\n";
  }

  if (opt.repeat > 1) {
    // Multi-seed sweep: fan the runs across cores (each run is fully
    // independent; results are joined deterministically by seed order).
    cfg.keep_occurrence_records = false;
    cfg.record_execution = false;
    parallel::ThreadPool pool;
    struct SweepRow {
      std::uint64_t global = 0;
      std::uint64_t msgs = 0;
      std::uint64_t cmp = 0;
      double alpha = 0.0;
    };
    const auto rows = parallel::parallel_map<SweepRow>(
        pool, opt.repeat, [&](std::size_t i) {
          runner::ExperimentConfig run_cfg = cfg;
          run_cfg.seed = opt.seed + i;
          const auto r = runner::run_experiment(run_cfg);
          return SweepRow{r.global_count, r.metrics.msgs_total(),
                          r.metrics.total_vc_comparisons(),
                          r.measured_alpha()};
        });
    TextTable t({"seed", "global detections", "msgs total", "vc comparisons",
                 "alpha"});
    double g_sum = 0.0;
    double m_sum = 0.0;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      t.add_row({std::to_string(opt.seed + i),
                 std::to_string(rows[i].global),
                 std::to_string(rows[i].msgs), std::to_string(rows[i].cmp),
                 TextTable::num(rows[i].alpha, 3)});
      g_sum += static_cast<double>(rows[i].global);
      m_sum += static_cast<double>(rows[i].msgs);
    }
    opt.csv ? t.print_csv(std::cout) : t.print(std::cout);
    std::cout << "\nmean over " << opt.repeat
              << " seeds: global detections "
              << TextTable::num(g_sum / static_cast<double>(opt.repeat), 2)
              << ", messages "
              << TextTable::num(m_sum / static_cast<double>(opt.repeat), 1)
              << "\n";
    return 0;
  }

  const auto result = runner::run_experiment(cfg);

  if (opt.show_tree) {
    std::cout << "initial spanning tree:\n";
    net::render_tree(std::cout, cfg.tree);
    if (!opt.failures.empty()) {
      std::cout << "final forest (survivors):\n";
      net::render_forest(std::cout, result.final_parents,
                         &result.final_alive);
    }
    std::cout << '\n';
  }

  if (!opt.dump_execution.empty()) {
    std::ofstream f(opt.dump_execution);
    if (!f) {
      std::cerr << "cannot open " << opt.dump_execution << "\n";
      return 1;
    }
    trace::write_execution(f, result.execution);
    std::cout << "execution written to " << opt.dump_execution << "\n";
  }
  if (!opt.dump_occurrences.empty()) {
    std::ofstream f(opt.dump_occurrences);
    if (!f) {
      std::cerr << "cannot open " << opt.dump_occurrences << "\n";
      return 1;
    }
    trace::write_occurrences_csv(f, result.occurrences);
    std::cout << "occurrences written to " << opt.dump_occurrences << "\n";
  }

  if (opt.stats) {
    analysis::print_stats(std::cout,
                          analysis::compute_stats(result.execution));
    std::cout << '\n';
  }

  std::cout << "network: n=" << cfg.topology.size()
            << " edges=" << cfg.topology.num_edges()
            << " tree-height=" << cfg.tree.height()
            << " max-degree=" << cfg.tree.max_degree()
            << " detector="
            << (opt.detector == runner::DetectorKind::kHierarchical
                    ? "hier"
                    : (opt.detector == runner::DetectorKind::kCentralized
                           ? "central"
                           : "possibly"))
            << " seed=" << opt.seed << "\n\n";

  if (opt.list_occurrences) {
    TextTable t({"t", "node", "#", "scope"});
    for (const auto& rec : result.occurrences) {
      t.add_row({TextTable::num(rec.time, 1), std::to_string(rec.detector),
                 std::to_string(rec.index),
                 rec.global ? "GLOBAL" : "subtree"});
    }
    opt.csv ? t.print_csv(std::cout) : t.print(std::cout);
    std::cout << '\n';
  }

  TextTable summary({"metric", "value"});
  summary.add_row({"global detections", std::to_string(result.global_count)});
  summary.add_row(
      {"all detections", std::to_string(result.metrics.total_detections())});
  summary.add_row({"measured alpha",
                   TextTable::num(result.measured_alpha(), 3)});
  summary.add_row({"vc comparisons",
                   std::to_string(result.metrics.total_vc_comparisons())});
  summary.add_row({"storage peak (worst node)",
                   std::to_string(result.metrics.max_node_storage_peak())});
  summary.add_row({"storage peak (sum)",
                   std::to_string(result.metrics.sum_node_storage_peak())});
  summary.add_row(
      {"dropped messages", std::to_string(result.dropped_messages)});
  summary.add_row({"sim events", std::to_string(result.sim_events)});
  opt.csv ? summary.print_csv(std::cout) : summary.print(std::cout);
  std::cout << '\n';

  TextTable msgs({"message type", "count"});
  for (const auto& [type, count] : result.metrics.msgs_by_type()) {
    msgs.add_row({result.metrics.message_type_name(type),
                  std::to_string(count)});
  }
  msgs.add_row({"total", std::to_string(result.metrics.msgs_total())});
  opt.csv ? msgs.print_csv(std::cout) : msgs.print(std::cout);

  if (!opt.failures.empty()) {
    std::cout << "\nfinal control tree (survivors):\n";
    for (std::size_t i = 0; i < result.final_alive.size(); ++i) {
      if (!result.final_alive[i]) {
        std::cout << "  " << i << ": crashed\n";
      } else if (result.final_parents[i] == kNoProcess) {
        std::cout << "  " << i << ": root\n";
      }
    }
  }
  return 0;
}

}  // namespace
}  // namespace hpd::tools

int main(int argc, char** argv) {
  return hpd::tools::run(hpd::tools::parse(argc, argv));
}
