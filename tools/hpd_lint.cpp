// hpd_lint — dependency-free structural linter for project invariants.
//
// Walks `<root>/src` and enforces, as machine-checkable rules, the
// conventions the differential oracles and the layered build silently
// depend on (see docs/STATIC_ANALYSIS.md for each rule's rationale):
//
//   layering          include-layering DAG between src/ modules
//   determinism       no wall clocks / ambient randomness outside rt/
//   wire-endianness   host<->network byte-order calls only in wire/
//   raw-concurrency   no naked std primitives outside the annotated wrappers
//   hot-path-containers  no std::map/set/deque in vc/, interval/, detect/
//   reactor-nonblocking  no blocking calls inside src/rt/reactor/
//   simd-intrinsics   vendor SIMD headers only in src/vc/simd.*
//   todo-issue        TODO must carry an issue reference; FIXME is banned
//   pragma-once       every header starts its life with #pragma once
//   using-namespace   no `using namespace std`
//
// Findings print as `file:line: rule-id message` (paths relative to the
// root) and the exit code is 1 when any finding survives the allowlist,
// 0 on a clean tree, 2 on usage errors. Per-rule allowlists live in a
// rules file (default `tools/hpd_lint_rules.txt` under the root): each
// non-comment line is `rule-id path-prefix`.
//
// The linter is deliberately textual (no libclang): it blanks comments and
// string literals, then matches identifier-boundary tokens, which is exact
// enough for these rules and keeps the tool a single translation unit that
// builds everywhere the project builds.

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string file;  // relative to root, forward slashes
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

struct AllowEntry {
  std::string rule;
  std::string path_prefix;
  mutable bool used = false;
};

// ---- Module layering DAG ----------------------------------------------------

// Allowed direct-include edges between src/ modules. A module may always
// include itself and anything listed here; everything else is a layering
// violation. Key invariants (ISSUE 3): vc/interval/core must not see sim,
// sim must not see rt (and vice versa — only the transport abstraction is
// shared), and mc may see everything.
const std::map<std::string, std::set<std::string>>& allowed_deps() {
  static const std::map<std::string, std::set<std::string>> kAllowed = {
      {"common", {}},
      {"vc", {"common"}},
      {"metrics", {"common"}},
      {"net", {"common"}},
      {"transport", {"common"}},
      {"parallel", {"common"}},
      {"interval", {"common", "vc"}},
      {"proto", {"common", "vc", "interval"}},
      {"wire", {"common", "vc", "interval", "proto"}},
      {"trace", {"common", "vc", "interval", "net"}},
      {"detect", {"common", "vc", "interval", "net", "parallel", "trace"}},
      {"core", {"common", "vc", "interval", "net", "trace", "detect"}},
      {"ft", {"common", "vc", "interval", "proto"}},
      {"analysis", {"common", "vc", "interval", "metrics", "net", "trace"}},
      {"ckpt",
       {"common", "vc", "interval", "metrics", "proto", "trace", "net",
        "wire", "detect", "core", "ft"}},
      {"sim", {"common", "metrics", "transport"}},
      {"runner",
       {"common", "vc", "interval", "metrics", "net", "transport", "proto",
        "wire", "trace", "detect", "core", "ft", "sim", "ckpt"}},
      {"rt",
       {"common", "vc", "interval", "metrics", "net", "transport", "proto",
        "wire", "trace", "detect", "core", "ft", "parallel", "runner",
        "ckpt"}},
      {"mc",
       {"common", "vc", "interval", "metrics", "net", "transport", "proto",
        "wire", "trace", "detect", "core", "ft", "parallel", "runner", "sim",
        "rt", "ckpt"}},
  };
  return kAllowed;
}

// ---- Token tables -----------------------------------------------------------

struct TokenRule {
  const char* token;
  const char* message;
};

// Wall-clock and ambient-randomness entry points. Sim-side code must be
// bit-reproducible from (config, seed); only the live runtime (rt/) may
// consult real time. Randomness must flow through common/rng (seeded).
constexpr TokenRule kDeterminismTokens[] = {
    {"std::chrono::system_clock", "wall clock breaks sim determinism"},
    {"std::chrono::steady_clock", "wall clock breaks sim determinism"},
    {"std::chrono::high_resolution_clock",
     "wall clock breaks sim determinism"},
    {"std::random_device", "ambient entropy breaks seed determinism"},
    {"std::this_thread::sleep_for", "wall-clock sleep outside the runtime"},
    {"std::this_thread::sleep_until", "wall-clock sleep outside the runtime"},
    {"rand(", "unseeded libc randomness; use common/rng"},
    {"srand(", "unseeded libc randomness; use common/rng"},
    // Qualified forms only: bare `time(` / `clock(` collide with member
    // functions of the same name (e.g. AppCore::clock()).
    {"std::time(", "wall clock breaks sim determinism"},
    {"::time(", "wall clock breaks sim determinism"},
    {"std::clock(", "wall clock breaks sim determinism"},
    {"::clock(", "wall clock breaks sim determinism"},
    {"gettimeofday(", "wall clock breaks sim determinism"},
    {"localtime(", "wall clock breaks sim determinism"},
    {"gmtime(", "wall clock breaks sim determinism"},
};

// Host<->network byte-order conversions belong to the wire layer; protocol
// code must go through wire/codec so the oracles can decode what travelled.
constexpr TokenRule kEndianTokens[] = {
    {"htons(", "byte-order conversion outside wire/"},
    {"htonl(", "byte-order conversion outside wire/"},
    {"ntohs(", "byte-order conversion outside wire/"},
    {"ntohl(", "byte-order conversion outside wire/"},
    {"htobe16(", "byte-order conversion outside wire/"},
    {"htobe32(", "byte-order conversion outside wire/"},
    {"htobe64(", "byte-order conversion outside wire/"},
    {"be16toh(", "byte-order conversion outside wire/"},
    {"be32toh(", "byte-order conversion outside wire/"},
    {"be64toh(", "byte-order conversion outside wire/"},
};

// Naked std synchronization; the annotated wrappers in
// common/thread_annotations.hpp are the only sanctioned spelling, so the
// Clang Thread Safety Analysis sees every lock.
constexpr TokenRule kConcurrencyTokens[] = {
    {"std::mutex", "use hpd::Mutex (annotated)"},
    {"std::recursive_mutex", "use hpd::Mutex (annotated)"},
    {"std::timed_mutex", "use hpd::Mutex (annotated)"},
    {"std::shared_mutex", "use hpd::Mutex (annotated)"},
    {"std::condition_variable", "use hpd::CondVar (annotated)"},
    {"std::lock_guard", "use hpd::MutexLock (annotated)"},
    {"std::unique_lock", "use hpd::MutexLock (annotated)"},
    {"std::scoped_lock", "use hpd::MutexLock (annotated)"},
};

// Thread spawning is confined to the runtime and the sweep-level pool.
constexpr TokenRule kThreadTokens[] = {
    {"std::thread", "threads only in rt/ and parallel/"},
    {"std::jthread", "threads only in rt/ and parallel/"},
};

// The detection hot path (ISSUE 5) is flat: dense slot-indexed vectors,
// ring buffers, and bitmaps. Node-based / segmented std containers
// allocate per element and chase pointers per step, which is exactly what
// the allocation-free offer() work removed — new uses need an allowlist
// entry with a justification.
constexpr TokenRule kHotPathContainerTokens[] = {
    {"std::map<", "node-based container in a hot-path module; use dense "
                  "slot storage (see queue_engine.hpp)"},
    {"std::multimap<", "node-based container in a hot-path module; use "
                       "dense slot storage (see queue_engine.hpp)"},
    {"std::set<", "node-based container in a hot-path module; use a slot "
                  "bitmap (see queue_engine.hpp)"},
    {"std::multiset<", "node-based container in a hot-path module; use a "
                       "slot bitmap (see queue_engine.hpp)"},
    {"std::deque<", "segmented container in a hot-path module; use a ring "
                    "buffer (see queue_engine.hpp)"},
};

// Durable-state serialization is confined to src/ckpt (typed snapshot /
// checkpoint / event-stream codecs) over the primitives in src/wire.
// Everything else consumes the typed surface — a module hand-rolling a
// wire::Encoder invents a byte format the fuzzers and version-skew tests
// never see. The reliable-session protocol frames in rt/ are the one
// allowlisted exception (protocol messages, not durable state).
constexpr TokenRule kCkptSerializationTokens[] = {
    {"wire::Encoder", "byte-level encoding outside wire/ and ckpt/; add a "
                      "typed codec in src/ckpt instead"},
    {"wire::Decoder", "byte-level decoding outside wire/ and ckpt/; add a "
                      "typed codec in src/ckpt instead"},
    {"encode_checkpoint_file(", "the checkpoint container codec is private "
                                "to src/ckpt; use ckpt::CheckpointStore"},
    {"decode_checkpoint_file(", "the checkpoint container codec is private "
                                "to src/ckpt; use ckpt::CheckpointStore"},
    {"put_interval_full(", "the checkpoint interval codec is private to "
                           "src/ckpt"},
    {"get_interval_full(", "the checkpoint interval codec is private to "
                           "src/ckpt"},
};

// A reactor worker hosts hundreds of nodes on one thread; its only
// sanctioned block point is epoll_wait with a computed timeout. Any other
// blocking call stalls every node the worker owns, so the raw blocking
// syscalls and sleeps are banned under src/rt/reactor/ — the nonblocking
// helpers in rt/socket (read_some / write_some / accept_conn /
// connect_start) are the sanctioned spellings. ScaledClock::sleep_until is
// driver-side pacing, never called from a worker, and member calls are
// exempt from the token match anyway.
constexpr TokenRule kReactorBlockingTokens[] = {
    {"std::this_thread::sleep_for",
     "sleep stalls every node on this worker; schedule a timer-wheel entry"},
    {"std::this_thread::sleep_until",
     "sleep stalls every node on this worker; schedule a timer-wheel entry"},
    {"usleep(", "sleep stalls every node on this worker"},
    {"nanosleep(", "sleep stalls every node on this worker"},
    {"::sleep(", "sleep stalls every node on this worker"},
    {"::poll(", "blocking multiplex; epoll_wait is the only block point"},
    {"::ppoll(", "blocking multiplex; epoll_wait is the only block point"},
    {"::select(", "blocking multiplex; epoll_wait is the only block point"},
    {"::pselect(", "blocking multiplex; epoll_wait is the only block point"},
    {"::connect(", "blocking connect; use rt::connect_start/connect_finish"},
    {"::accept(", "use rt::accept_conn (nonblocking)"},
    {"::send(", "use rt::write_some (nonblocking, EINTR/EAGAIN-safe)"},
    {"::recv(", "use rt::read_some (nonblocking, EINTR/EAGAIN-safe)"},
};

// Vendor SIMD intrinsics headers are confined to the dispatch layer in
// src/vc/simd.* — everything else calls through the vc_simd::Kernels
// table, so exactly one translation unit decides CPU-feature questions
// and the portable/AVX2/NEON bit-identity contract stays testable in one
// place.
constexpr TokenRule kSimdIntrinsicsTokens[] = {
    {"<immintrin.h>", "vendor intrinsics outside src/vc/simd.*; use the "
                      "vc_simd::Kernels table"},
    {"<x86intrin.h>", "vendor intrinsics outside src/vc/simd.*; use the "
                      "vc_simd::Kernels table"},
    {"<emmintrin.h>", "vendor intrinsics outside src/vc/simd.*; use the "
                      "vc_simd::Kernels table"},
    {"<arm_neon.h>", "vendor intrinsics outside src/vc/simd.*; use the "
                     "vc_simd::Kernels table"},
};

// ---- Lexical helpers --------------------------------------------------------

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Blank comment bodies and string/char literal contents (newlines kept, so
/// line numbers survive). Raw strings are handled; include directives are
/// matched on the raw text separately, so losing their quoted path is fine.
std::string strip_comments_and_strings(const std::string& in) {
  std::string out = in;
  enum class St { kCode, kLine, kBlock, kStr, kChar, kRaw } st = St::kCode;
  std::string raw_delim;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (st) {
      case St::kCode:
        if (c == '/' && next == '/') {
          st = St::kLine;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          st = St::kBlock;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          // Raw string? Look back for `R` plus an optional encoding prefix
          // (u8, u, U, L) starting at an identifier boundary — `LR"(...)"`
          // must not fall into the plain-string state, where the literal's
          // first unescaped quote would end it early and leak its tail.
          std::size_t r = i;
          bool raw = false;
          if (i >= 1 && out[i - 1] == 'R') {
            std::size_t pre = i - 1;
            if (pre >= 1 && (out[pre - 1] == 'u' || out[pre - 1] == 'U' ||
                             out[pre - 1] == 'L')) {
              pre -= 1;
            } else if (pre >= 2 && out[pre - 2] == 'u' && out[pre - 1] == '8') {
              pre -= 2;
            }
            if (pre == 0 || !ident_char(out[pre - 1])) {
              raw = true;
              r = i - 1;
            }
          }
          if (raw) {
            // Delimiter scan is bounded (the standard caps it at 16 chars)
            // and stops at newline/EOF instead of running off the file.
            std::size_t p = i + 1;
            raw_delim.clear();
            while (p < out.size() && out[p] != '(' && out[p] != '\n' &&
                   raw_delim.size() <= 16) {
              raw_delim += out[p++];
            }
            if (p < out.size() && out[p] == '(') {
              for (std::size_t k = r; k <= p; ++k) {
                out[k] = ' ';
              }
              i = p;
              st = St::kRaw;
            } else {
              st = St::kStr;  // `R"` not opening a raw string after all
            }
          } else {
            st = St::kStr;
          }
        } else if (c == '\'' && (i == 0 || !ident_char(out[i - 1]))) {
          // Identifier-boundary check keeps digit separators (1'000) intact.
          st = St::kChar;
        }
        break;
      case St::kLine:
        if (c == '\n') {
          st = St::kCode;
        } else if (c == '\\' && next == '\n') {
          // Backslash line-splice: to the compiler the comment continues on
          // the next physical line, so it must stay blanked here too. Keep
          // the newline itself — line numbers depend on it.
          out[i] = ' ';
          ++i;
        } else if (c == '\\' && next == '\r' && i + 2 < out.size() &&
                   out[i + 2] == '\n') {
          out[i] = out[i + 1] = ' ';
          i += 2;
        } else {
          out[i] = ' ';
        }
        break;
      case St::kBlock:
        if (c == '*' && next == '/') {
          out[i] = out[i + 1] = ' ';
          ++i;
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kStr:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < out.size() && out[i + 1] != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < out.size() && out[i + 1] != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kRaw: {
        const std::string closer = ")" + raw_delim + "\"";
        if (out.compare(i, closer.size(), closer) == 0) {
          for (std::size_t k = i; k < i + closer.size(); ++k) {
            out[k] = ' ';
          }
          i += closer.size() - 1;
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      }
    }
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& s) {
  std::vector<std::string> lines;
  std::string cur;
  for (const char c : s) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) {
    lines.push_back(cur);
  }
  return lines;
}

/// Find `token` in `line` at an identifier boundary (the char before the
/// match must not be part of an identifier or a `.`/`>` member access —
/// `obj.time(` is a member call, not libc time()).
bool has_token(const std::string& line, const std::string& token) {
  std::size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    const char before = pos == 0 ? '\0' : line[pos - 1];
    if (pos == 0 ||
        (!ident_char(before) && before != '.' && before != ':' &&
         before != '>')) {
      return true;
    }
    pos += 1;
  }
  return false;
}

// ---- Per-file checks --------------------------------------------------------

struct FileReport {
  std::vector<Finding> findings;
};

void add(FileReport& r, const std::string& file, std::size_t line,
         const char* rule, const std::string& msg) {
  r.findings.push_back({file, line, rule, msg});
}

void check_file(const fs::path& abs, const std::string& rel, FileReport& r) {
  std::ifstream in(abs, std::ios::binary);
  if (!in) {
    add(r, rel, 0, "io-error", "cannot read file");
    return;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string raw = buf.str();
  const std::vector<std::string> raw_lines = split_lines(raw);
  const std::vector<std::string> code_lines =
      split_lines(strip_comments_and_strings(raw));

  const bool is_header = rel.size() >= 4 && rel.ends_with(".hpp");
  // rel is "src/<module>/..."; callers only hand us files under src/.
  std::string module;
  {
    const std::size_t a = rel.find('/');
    const std::size_t b = rel.find('/', a + 1);
    if (a != std::string::npos && b != std::string::npos) {
      module = rel.substr(a + 1, b - a - 1);
    }
  }

  // pragma-once: headers must carry the guard.
  if (is_header) {
    // Checked on comment-stripped lines: prose merely *mentioning* the
    // directive must not count.
    const bool found = std::any_of(
        code_lines.begin(), code_lines.end(), [](const std::string& l) {
          return l.find("#pragma once") != std::string::npos;
        });
    if (!found) {
      add(r, rel, 1, "pragma-once", "header without #pragma once");
    }
  }

  const auto& deps = allowed_deps();
  const auto self = deps.find(module);

  for (std::size_t i = 0; i < raw_lines.size(); ++i) {
    const std::string& rl = raw_lines[i];
    const std::string& cl = i < code_lines.size() ? code_lines[i] : rl;
    const std::size_t ln = i + 1;

    // layering: #include "other_module/..." must be an allowed edge.
    if (self != deps.end()) {
      const std::size_t q = rl.find("#include \"");
      if (q != std::string::npos) {
        const std::size_t start = q + 10;
        const std::size_t slash = rl.find('/', start);
        const std::size_t quote = rl.find('"', start);
        if (slash != std::string::npos && quote != std::string::npos &&
            slash < quote) {
          const std::string dep = rl.substr(start, slash - start);
          if (deps.count(dep) != 0 && dep != module &&
              self->second.count(dep) == 0) {
            add(r, rel, ln, "layering",
                "module '" + module + "' must not include '" + dep +
                    "/' (see the layering DAG in docs/STATIC_ANALYSIS.md)");
          }
        }
      }
    }

    // determinism: wall clocks / ambient randomness outside rt/.
    if (module != "rt") {
      for (const TokenRule& t : kDeterminismTokens) {
        if (has_token(cl, t.token)) {
          add(r, rel, ln,
              "determinism", std::string(t.token) + ": " + t.message);
        }
      }
    }

    // wire-endianness: byte-order conversions outside wire/.
    if (module != "wire") {
      for (const TokenRule& t : kEndianTokens) {
        if (has_token(cl, t.token)) {
          add(r, rel, ln,
              "wire-endianness", std::string(t.token) + ": " + t.message);
        }
      }
    }

    // raw-concurrency: naked std sync primitives anywhere; threads outside
    // rt/ and parallel/.
    for (const TokenRule& t : kConcurrencyTokens) {
      if (has_token(cl, t.token)) {
        add(r, rel, ln,
            "raw-concurrency", std::string(t.token) + ": " + t.message);
      }
    }
    if (module != "rt" && module != "parallel") {
      for (const TokenRule& t : kThreadTokens) {
        if (has_token(cl, t.token)) {
          add(r, rel, ln,
              "raw-concurrency", std::string(t.token) + ": " + t.message);
        }
      }
    }

    // hot-path-containers: node-based / segmented std containers stay out
    // of the allocation-free detection modules.
    if (module == "vc" || module == "interval" || module == "detect") {
      for (const TokenRule& t : kHotPathContainerTokens) {
        if (has_token(cl, t.token)) {
          add(r, rel, ln, "hot-path-containers",
              std::string(t.token) + ": " + t.message);
        }
      }
    }

    // ckpt-serialization: durable-state byte codecs stay in src/ckpt and
    // src/wire; everyone else goes through the typed encode_*/decode_*
    // surface or ckpt::CheckpointStore.
    if (module != "ckpt" && module != "wire") {
      for (const TokenRule& t : kCkptSerializationTokens) {
        if (has_token(cl, t.token)) {
          add(r, rel, ln, "ckpt-serialization",
              std::string(t.token) + ": " + t.message);
        }
      }
    }

    // reactor-nonblocking: the event-loop directory must stay free of
    // blocking syscalls and sleeps (epoll_wait is the one block point).
    if (rel.rfind("src/rt/reactor/", 0) == 0) {
      for (const TokenRule& t : kReactorBlockingTokens) {
        if (has_token(cl, t.token)) {
          add(r, rel, ln, "reactor-nonblocking",
              std::string(t.token) + ": " + t.message);
        }
      }
    }

    // simd-intrinsics: vendor SIMD headers stay behind the dispatch layer.
    if (rel != "src/vc/simd.hpp" && rel != "src/vc/simd.cpp") {
      for (const TokenRule& t : kSimdIntrinsicsTokens) {
        if (has_token(cl, t.token)) {
          add(r, rel, ln, "simd-intrinsics",
              std::string(t.token) + ": " + t.message);
        }
      }
    }

    // todo-issue: TODO must reference an issue; FIXME is banned outright.
    // (Checked on raw lines — these live in comments.)
    std::size_t tp = 0;
    while ((tp = rl.find("TODO", tp)) != std::string::npos) {
      const std::size_t after = tp + 4;
      const bool word_tail = after < rl.size() && ident_char(rl[after]);
      const bool boundary_ok = tp == 0 || !ident_char(rl[tp - 1]);
      if (!word_tail && boundary_ok &&
          (rl.compare(after, 2, "(#") != 0 || after + 2 >= rl.size() ||
           std::isdigit(static_cast<unsigned char>(rl[after + 2])) == 0)) {
        add(r, rel, ln, "todo-issue",
            "TODO without an issue reference; write TODO(#123)");
      }
      tp = after;
    }
    if (rl.find("FIXME") != std::string::npos) {
      add(r, rel, ln, "todo-issue", "FIXME marker; file an issue instead");
    }

    // using-namespace: never `using namespace std`.
    if (has_token(cl, "using namespace std")) {
      add(r, rel, ln, "using-namespace",
          "`using namespace std` pollutes every includer");
    }
  }
}

// ---- Driver -----------------------------------------------------------------

const std::set<std::string>& known_rule_ids() {
  static const std::set<std::string> kIds = {
      "layering",        "determinism",         "wire-endianness",
      "raw-concurrency", "hot-path-containers", "reactor-nonblocking",
      "todo-issue",      "pragma-once",         "using-namespace",
      "ckpt-serialization", "simd-intrinsics",
  };
  return kIds;
}

// A malformed line is a hard error (`err` set, caller exits 2): an entry
// that silently fails to parse — or names a rule that doesn't exist —
// would quietly stop suppressing, or worse, let a typo ship as if it
// suppressed something.
std::vector<AllowEntry> read_rules(const fs::path& file, std::string& err) {
  std::vector<AllowEntry> entries;
  std::ifstream in(file);
  if (!in) {
    err = "cannot read rules file " + file.string();
    return entries;
  }
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream is(line);
    AllowEntry e;
    std::string extra;
    if (!(is >> e.rule)) {
      continue;  // blank / comment-only line
    }
    if (!(is >> e.path_prefix) || (is >> extra)) {
      err = file.string() + ":" + std::to_string(lineno) +
            ": malformed allowlist line (want `rule-id path-prefix`)";
      return entries;
    }
    if (known_rule_ids().count(e.rule) == 0) {
      err = file.string() + ":" + std::to_string(lineno) +
            ": unknown rule-id `" + e.rule + "`";
      return entries;
    }
    entries.push_back(e);
  }
  return entries;
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--root DIR] [--rules FILE] [--strict] [--quiet]\n"
               "Lints DIR/src (default root: .). Allowlist: FILE lines of\n"
               "`rule-id path-prefix` (default: DIR/tools/hpd_lint_rules.txt\n"
               "when present). --strict also fails on unused allowlist\n"
               "entries. Exit 1 on findings, 2 on usage errors or a\n"
               "malformed rules file.\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  fs::path rules_file;
  bool strict = false;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--rules" && i + 1 < argc) {
      rules_file = argv[++i];
    } else if (arg == "--strict") {
      strict = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      return usage(argv[0]);
    }
  }

  const fs::path src = root / "src";
  if (!fs::is_directory(src)) {
    std::cerr << "hpd_lint: no src/ under " << root << "\n";
    return 2;
  }

  std::vector<AllowEntry> allow;
  if (rules_file.empty()) {
    const fs::path dflt = root / "tools" / "hpd_lint_rules.txt";
    if (fs::exists(dflt)) {
      rules_file = dflt;
    }
  }
  if (!rules_file.empty()) {
    std::string err;
    allow = read_rules(rules_file, err);
    if (!err.empty()) {
      std::cerr << "hpd_lint: " << err << "\n";
      return 2;
    }
  }

  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    const std::string ext = entry.path().extension().string();
    if (ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());

  FileReport report;
  for (const fs::path& f : files) {
    const std::string rel =
        fs::relative(f, root).generic_string();
    check_file(f, rel, report);
  }

  std::vector<Finding> kept;
  for (const Finding& fd : report.findings) {
    const auto suppressed =
        std::any_of(allow.begin(), allow.end(), [&](const AllowEntry& e) {
          if (e.rule != fd.rule ||
              fd.file.compare(0, e.path_prefix.size(), e.path_prefix) != 0) {
            return false;
          }
          e.used = true;
          return true;
        });
    if (!suppressed) {
      kept.push_back(fd);
    }
  }

  for (const Finding& fd : kept) {
    std::cout << fd.file << ":" << fd.line << ": " << fd.rule << " "
              << fd.message << "\n";
  }
  std::size_t unused = 0;
  for (const AllowEntry& e : allow) {
    if (e.used) {
      continue;
    }
    ++unused;
    if (strict || !quiet) {
      std::cerr << "hpd_lint: " << (strict ? "error" : "note")
                << ": unused allowlist entry `" << e.rule << " "
                << e.path_prefix << "`\n";
    }
  }
  if (!quiet) {
    std::cerr << "hpd_lint: " << files.size() << " files, " << kept.size()
              << " finding(s)\n";
  }
  if (!kept.empty()) {
    return 1;
  }
  return strict && unused != 0 ? 1 : 0;
}
