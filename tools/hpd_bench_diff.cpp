// hpd_bench_diff — compare a bench run against a baseline snapshot.
//
// Both inputs are the flat JSON files the benches emit through
// `bench::JsonReport` (bench/out/BENCH_<name>.json, committed snapshots
// under bench/baselines/):
//
//   { "bench": "<name>", "metrics": { "<metric>": <number>, ... } }
//
// For every metric present in the baseline the tool computes the relative
// change and fails (exit 1) on *regressions* beyond the threshold —
// improvements never fail, however large. All emitted metrics are
// costs (`*_real_ns`, `*_bytes_per_*`), so "worse" always means "larger";
// a metric whose name ends in `_per_s` is treated as a rate (larger is
// better) for forward compatibility. A metric that disappears from the
// current run is a failure; new metrics only in the current run are
// reported informationally.
//
// Usage:
//   hpd_bench_diff <baseline.json> <current.json>
//       [--threshold <pct>]          default regression threshold (30)
//       [--metric <substr>=<pct>]    per-metric override, first substring
//                                    match wins (repeatable)
//       [--allow-missing]            report metrics absent from the current
//                                    run but do not fail on them (for
//                                    intentional bench removals; the next
//                                    baseline refresh drops them for good)
//
// Exit codes: 0 no regressions, 1 regressions found, 2 usage/parse error.
// Like hpd_lint, deliberately dependency-free (std library only) so it can
// run in CI before anything else builds.

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Metric {
  std::string name;
  double value = 0.0;
};

struct BenchFile {
  std::string bench;
  std::vector<Metric> metrics;
};

const Metric* find(const BenchFile& f, const std::string& name) {
  for (const Metric& m : f.metrics) {
    if (m.name == name) {
      return &m;
    }
  }
  return nullptr;
}

// ---- Minimal JSON reader for the flat bench format --------------------------

struct Parser {
  std::string text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
      ++pos;
    }
  }

  bool eat(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool peek(char c) {
    skip_ws();
    return pos < text.size() && text[pos] == c;
  }

  // Quoted string; the bench reporter never emits escapes, so reject them.
  bool string(std::string& out) {
    if (!eat('"')) {
      return false;
    }
    out.clear();
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\') {
        return false;
      }
      out.push_back(text[pos++]);
    }
    return eat('"');
  }

  bool number(double& out) {
    skip_ws();
    const char* start = text.c_str() + pos;
    char* end = nullptr;
    out = std::strtod(start, &end);
    if (end == start) {
      return false;
    }
    pos += static_cast<std::size_t>(end - start);
    return true;
  }
};

bool parse_bench_file(const std::string& path, BenchFile& out,
                      std::string& err) {
  std::ifstream is(path);
  if (!is) {
    err = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  Parser p{buf.str()};
  if (!p.eat('{')) {
    err = path + ": expected '{'";
    return false;
  }
  bool first = true;
  while (!p.peek('}')) {
    if (!first && !p.eat(',')) {
      err = path + ": expected ',' between members";
      return false;
    }
    first = false;
    std::string key;
    if (!p.string(key) || !p.eat(':')) {
      err = path + ": expected \"key\":";
      return false;
    }
    if (key == "bench") {
      if (!p.string(out.bench)) {
        err = path + ": \"bench\" must be a string";
        return false;
      }
    } else if (key == "metrics") {
      if (!p.eat('{')) {
        err = path + ": \"metrics\" must be an object";
        return false;
      }
      bool mfirst = true;
      while (!p.peek('}')) {
        if (!mfirst && !p.eat(',')) {
          err = path + ": expected ',' between metrics";
          return false;
        }
        mfirst = false;
        Metric m;
        if (!p.string(m.name) || !p.eat(':') || !p.number(m.value)) {
          err = path + ": expected \"metric\": number";
          return false;
        }
        out.metrics.push_back(std::move(m));
      }
      p.eat('}');
    } else {
      err = path + ": unknown key \"" + key + "\"";
      return false;
    }
  }
  if (!p.eat('}')) {
    err = path + ": expected '}'";
    return false;
  }
  return true;
}

// ---- Comparison -------------------------------------------------------------

struct Override {
  std::string substr;
  double pct = 0.0;
};

bool higher_is_better(const std::string& name) {
  const std::string suffix = "_per_s";
  return name.size() >= suffix.size() &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
}

int usage() {
  std::cerr
      << "usage: hpd_bench_diff <baseline.json> <current.json>\n"
         "           [--threshold <pct>] [--metric <substr>=<pct>]...\n"
         "           [--allow-missing]\n"
         "Fails (exit 1) on metrics regressing beyond the threshold\n"
         "(default 30%). Improvements never fail. Metrics missing from\n"
         "the current run fail unless --allow-missing is given.\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  double threshold = 30.0;
  bool allow_missing = false;
  std::vector<Override> overrides;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--allow-missing") {
      allow_missing = true;
    } else if (arg == "--threshold") {
      if (++i >= argc) {
        return usage();
      }
      threshold = std::atof(argv[i]);
    } else if (arg == "--metric") {
      if (++i >= argc) {
        return usage();
      }
      const std::string spec = argv[i];
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0) {
        return usage();
      }
      overrides.push_back(
          {spec.substr(0, eq), std::atof(spec.c_str() + eq + 1)});
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "hpd_bench_diff: unknown flag " << arg << "\n";
      return usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) {
    return usage();
  }

  BenchFile baseline;
  BenchFile current;
  std::string err;
  if (!parse_bench_file(paths[0], baseline, err) ||
      !parse_bench_file(paths[1], current, err)) {
    std::cerr << "hpd_bench_diff: " << err << "\n";
    return 2;
  }

  int regressions = 0;
  std::printf("%-44s %14s %14s %9s  %s\n", "metric", "baseline", "current",
              "delta", "status");
  for (const Metric& base : baseline.metrics) {
    const Metric* cur = find(current, base.name);
    if (cur == nullptr) {
      std::printf("%-44s %14.6g %14s %9s  %s\n", base.name.c_str(),
                  base.value, "-", "-",
                  allow_missing ? "missing (allowed)" : "MISSING");
      if (!allow_missing) {
        ++regressions;
      }
      continue;
    }
    double limit = threshold;
    for (const Override& o : overrides) {
      if (base.name.find(o.substr) != std::string::npos) {
        limit = o.pct;
        break;
      }
    }
    const double change =
        base.value == 0.0
            ? (cur->value == 0.0 ? 0.0 : 100.0)
            : (cur->value - base.value) / base.value * 100.0;
    const double worse = higher_is_better(base.name) ? -change : change;
    const char* status = "ok";
    if (worse > limit) {
      status = "REGRESSION";
      ++regressions;
    } else if (worse < -limit) {
      status = "improved";
    }
    std::printf("%-44s %14.6g %14.6g %+8.1f%%  %s\n", base.name.c_str(),
                base.value, cur->value, change, status);
  }
  for (const Metric& m : current.metrics) {
    if (find(baseline, m.name) == nullptr) {
      std::printf("%-44s %14s %14.6g %9s  %s\n", m.name.c_str(), "-", m.value,
                  "-", "new");
    }
  }
  if (regressions > 0) {
    std::printf("hpd_bench_diff: %d metric(s) regressed beyond threshold "
                "(%.0f%% default)\n",
                regressions, threshold);
    return 1;
  }
  std::printf("hpd_bench_diff: no regressions (%zu metrics checked)\n",
              baseline.metrics.size());
  return 0;
}
